(* The 7-app "train" group (Table 1, top): the applications CAFA studied,
   which the paper used to design its unsound filters (§6.2).

   Each app is a hand-written MiniAndroid core carrying the paper's named
   bugs — ConnectBot's Fig 1(a)/(b), FireFox's Fig 1(c), the DEvA rows of
   Table 3 (ToDoList's [db], Music's [mAdapter]/[mPlayer], MyTracks'
   [binder]/[provUtils], Browser's Fragment case) — plus generated
   pattern instances that scale the warning counts toward each row's
   shape. Absolute counts are not reproducible from closed-source APKs;
   ratios and who-filters-what are. *)

open Spec

let mk_spec app acts services padding : Spec.t =
  { app_name = app; activities = acts; services; padding }

(* Replicate a pattern n times. *)
let rep n p = List.init n (fun _ -> p)

(* ------------------------------------------------------------------ *)
(* ToDoList — DEvA row: field [db], use in onActivityResult, free in the
   "done" click handler which also finishes the activity: nAdroid
   detects it and the CHB filter prunes it (Table 3 row 1). *)

let todolist_hand =
  {|
class TodoDb {
  field int entries;
  method void open() { entries = 0; }
  method void addEntry() { entries = entries + 1; }
  method void close() { entries = 0; }
}

class ToDoActivity extends Activity {
  field TodoDb db;

  method void onCreate() {
    db = new TodoDb();
    db.open();
    this.findViewById(900).setOnClickListener(new OnClickListener() {
      // the "done" button: tears the activity down
      method void onClick(View v) {
        db.close();
        db = null;
        finish();
      }
    });
  }

  method void onActivityResult(int code) {
    // DEvA flags this as harmful; the CHB relation with finish() makes
    // it benign
    db.addEntry();
  }
}
|}

let todolist =
  let spec =
    mk_spec "ToDoList"
      [
        {
          act_name = "TodoListActivity";
          patterns = rep 31 P_guarded @ rep 22 P_mhb_lifecycle @ rep 4 P_intra_alloc @ [ P_safe ];
        };
      ]
      0 2
  in
  (todolist_hand, spec)

(* ------------------------------------------------------------------ *)
(* Zxing — barcode scanner; a couple of surviving flag-guarded false
   positives, everything else soundly filtered. *)

let zxing_hand =
  {|
// The classic zxing architecture: the capture activity owns a handler
// that talks to a dedicated decode thread; results come back as
// messages. All hand-written accesses are guarded or lifecycle-ordered.
class ViewfinderState {
  field int frames;
  method void drawFrame() { frames = frames + 1; }
  method void reset() { frames = 0; }
}

class DecodeState {
  field int decoded;
  field bool busy;
  method void markBusy() { busy = true; }
  method void markDone() { busy = false; decoded = decoded + 1; }
}

class CaptureActivity extends Activity {
  field ViewfinderState viewfinder;
  field DecodeState decodeState;
  field Handler captureHandler;
  field Executor decodePool;
  field int resultCount;

  method void onCreate() {
    viewfinder = new ViewfinderState();
    decodeState = new DecodeState();
    decodePool = new Executor();
    captureHandler = new Handler() {
      method void handleMessage(Message m) {
        // decode-succeeded message from the worker
        if (decodeState != null) {
          decodeState.markDone();
          resultCount = resultCount + 1;
        }
      }
    };
  }

  method void onResume() {
    // restart preview; the viewfinder is re-allocated across pauses
    viewfinder = new ViewfinderState();
    viewfinder.drawFrame();
  }

  method void onPause() {
    // quiesce the decode loop; the state object survives for onResume
    if (decodeState != null) {
      decodeState.markBusy();
    }
  }

  method void requestDecode() {
    decodeState.markBusy();
    decodePool.execute(new Runnable() {
      method void run() {
        // worker: long-running decode, then notify the looper
        sleep(5);
        captureHandler.sendEmptyMessage(1);
      }
    });
  }

  method void onStart() {
    this.findViewById(800).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        if (viewfinder != null) {
          viewfinder.drawFrame();
          requestDecode();
        }
      }
    });
  }

  method void onDestroy() {
    decodeState = null;
    viewfinder = null;
  }
}
|}

let zxing =
  let spec =
    mk_spec "Zxing"
      [
        {
          act_name = "ScanHistoryActivity";
          patterns =
            rep 71 P_guarded @ rep 43 P_mhb_lifecycle @ rep 42 P_intra_alloc
            @ [ P_mhb_async; P_ur; P_fp_path; P_fp_path; P_safe; P_safe ];
        };
      ]
      0 4
  in
  (zxing_hand, spec)

(* ------------------------------------------------------------------ *)
(* Music — the DEvA comparison's main subject: many [mAdapter] fields
   used in onActivityResult / onRetainNonConfigurationInstance and freed
   in onDestroy (pruned by MHB-Lifecycle), plus [mPlayer] freed in the
   service's onDestroy. *)

let music_hand =
  {|
class Cursor2 {
  field int rows;
  method void requery() { rows = rows + 1; }
  method void deactivate() { rows = 0; }
}

class AlbumBrowserActivity extends Activity {
  field Cursor2 mAdapter;
  method void onCreate() { mAdapter = new Cursor2(); }
  method void onActivityResult(int code) { mAdapter.requery(); }
  method void onRetainNonConfigurationInstance() { mAdapter.requery(); }
  method void onDestroy() { mAdapter.deactivate(); mAdapter = null; }
}

class TrackBrowserActivity extends Activity {
  field Cursor2 mAdapter;
  method void onCreate() { mAdapter = new Cursor2(); }
  method void onActivityResult(int code) { mAdapter.requery(); }
  method void onRetainNonConfigurationInstance() { mAdapter.requery(); }
  method void onDestroy() { mAdapter = null; }
}

class QueryBrowserActivity extends Activity {
  field Cursor2 mAdapter;
  method void onCreate() { mAdapter = new Cursor2(); }
  method void onActivityResult(int code) { mAdapter.requery(); }
  method void onRetainNonConfigurationInstance() { mAdapter.requery(); }
  method void onDestroy() { mAdapter = null; }
}

class MediaPlayer2 {
  field int position;
  method void setNext() { position = position + 1; }
  method void release() { position = 0; }
}

class MediaPlaybackService extends Service {
  field MediaPlayer2 mPlayer;
  field PlayQueue queue;
  field WakeLock wakeLock;

  method void onCreate() {
    mPlayer = new MediaPlayer2();
    queue = new PlayQueue();
    wakeLock = this.getPowerManager().newWakeLock("playback");
  }
  method void onStartCommand(Intent i) {
    wakeLock.acquire();
    this.setNextTrack();
  }
  method void setNextTrack() {
    if (queue != null) {
      queue.advance();
    }
    mPlayer.setNext();
  }
  method void onDestroy() {
    wakeLock.release();
    mPlayer.release();
    mPlayer = null;
    queue = null;
  }
}

class PlayQueue {
  field int position;
  field int length;
  method void advance() {
    position = position + 1;
    if (position >= length) {
      position = 0;
    }
  }
  method void enqueue() { length = length + 1; }
  method bool isEmpty() { return length == 0; }
}

class AlbumArtCache {
  field int hits;
  field int misses;
  method void record(bool hit) {
    if (hit) {
      hits = hits + 1;
    } else {
      misses = misses + 1;
    }
  }
}

class MediaPlaybackActivity extends Activity {
  field PlayQueue nowPlaying;
  field AlbumArtCache artCache;
  field Handler refreshHandler;
  field Executor artPool;
  field int refreshTicks;

  method void onCreate() {
    nowPlaying = new PlayQueue();
    artCache = new AlbumArtCache();
    artPool = new Executor();
    refreshHandler = new Handler() {
      method void handleMessage(Message m) {
        // periodic progress refresh; reschedules itself
        refreshTicks = refreshTicks + 1;
        if (refreshTicks < 100) {
          refreshHandler.sendEmptyMessage(0);
        }
      }
    };
  }

  method void onResume() {
    refreshHandler.sendEmptyMessage(0);
  }

  method void onPause() {
    // stop the refresh loop while invisible
    refreshHandler.removeCallbacksAndMessages();
  }

  method void loadAlbumArt() {
    artPool.execute(new Runnable() {
      method void run() {
        sleep(10);
        if (artCache != null) {
          artCache.record(false);
        }
      }
    });
  }

  method void onStart() {
    this.findViewById(810).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        if (nowPlaying != null) {
          nowPlaying.enqueue();
          loadAlbumArt();
        }
      }
    });
  }

  method void onDestroy() {
    nowPlaying = null;
  }
}

class MediaButtonReceiver extends BroadcastReceiver {
  field int presses;
  method void onReceive(Intent i) {
    presses = presses + 1;
    log("media button " + i2s(presses));
  }
}
|}

let music =
  let spec =
    mk_spec "Music"
      [
        {
          act_name = "MusicBrowserActivity";
          patterns =
            rep 112 P_guarded @ rep 65 P_mhb_lifecycle @ rep 63 P_intra_alloc @ rep 2 P_mhb_service
            @ [ P_rhb; P_phb ] @ rep 12 P_ma @ rep 9 P_ur @ [ P_tt ] @ rep 3 P_fp_path
            @ [ P_fp_missing_hb ] @ rep 2 P_safe;
        };
        {
          act_name = "PlaylistBrowserActivity";
          patterns = rep 51 P_guarded @ rep 22 P_mhb_lifecycle @ [ P_ma; P_ur; P_fp_path; P_safe ];
        };
      ]
      1 8
  in
  (music_hand, spec)

(* ------------------------------------------------------------------ *)
(* MyTracks (version 1) — service binder pattern (Table 3: [binder]
   onBind / onDestroy, MHB-filtered; [provUtils] reported harmful), and a
   large population of C-RT bugs from recording threads. *)

let mytracks1_hand =
  {|
class ProviderUtils {
  field int pending;
  method void insertPoint() { pending = pending + 1; }
  method void flush() { pending = 0; }
}

class TrackRecordingService extends Service {
  field Binder binder;
  field ProviderUtils provUtils;

  method void onCreate() {
    binder = new Binder();
    provUtils = new ProviderUtils();
  }
  method Binder onBind(Intent i) { return binder; }
  method void onStartCommand(Intent i) {
    // location updates arrive on a registered listener and are written
    // through provUtils from an async recording path
    this.getLocationManager().requestLocationUpdates(new LocationListener() {
      method void onLocationChanged(Location loc) {
        new AsyncTask() {
          method void onPreExecute() { log("record"); }
          method void doInBackground() { provUtils.insertPoint(); }
          method void onPostExecute() { log("recorded"); }
        }.execute();
      }
    });
  }
  method void onDestroy() {
    binder = null;
    provUtils.flush();
    provUtils = null;
  }
}

class TripStatistics {
  field int distance;
  field int movingTime;
  method void addPoint(int delta) {
    distance = distance + delta;
    movingTime = movingTime + 1;
  }
  method int averageSpeed() {
    if (movingTime == 0) {
      return 0;
    }
    return distance / movingTime;
  }
}

class GpsState {
  field int fixes;
  field bool hasSignal;
  method void onFix() { fixes = fixes + 1; hasSignal = true; }
  method void onLost() { hasSignal = false; }
}

class StatsActivity extends Activity {
  field TripStatistics stats;
  field GpsState gps;
  field Handler statsHandler;

  method void onCreate() {
    stats = new TripStatistics();
    gps = new GpsState();
    statsHandler = new Handler() {
      method void handleMessage(Message m) {
        if (stats != null) {
          log("avg " + i2s(stats.averageSpeed()));
        }
      }
    };
    this.getLocationManager().requestLocationUpdates(new LocationListener() {
      method void onLocationChanged(Location loc) {
        if (gps != null) {
          gps.onFix();
        }
        if (stats != null) {
          stats.addPoint(3);
        }
        statsHandler.sendEmptyMessage(0);
      }
    });
  }

  method void onDestroy() {
    statsHandler.removeCallbacksAndMessages();
    stats = null;
    gps = null;
  }
}
|}

let mytracks1 =
  let spec =
    mk_spec "MyTracks_1"
      [
        {
          act_name = "TrackListActivity";
          patterns =
            [ P_ec_pc_uaf; P_pc_pc_uaf; P_pc_pc_uaf ]
            @ rep 13 P_c_rt_uaf @ rep 82 P_guarded @ rep 43 P_mhb_lifecycle @ rep 42 P_intra_alloc
            @ [ P_rhb; P_chb; P_phb ] @ rep 8 P_ma @ rep 6 P_ur @ [ P_tt ] @ rep 5 P_fp_path
            @ rep 2 P_fp_missing_hb @ rep 2 P_safe;
        };
        {
          act_name = "TrackDetailActivity";
          patterns =
            rep 12 P_c_rt_uaf @ rep 51 P_guarded @ rep 22 P_mhb_lifecycle
            @ rep 4 P_intra_alloc @ [ P_ma; P_ur; P_fp_path; P_safe ];
        };
      ]
      0 6
  in
  (mytracks1_hand, spec)

(* ------------------------------------------------------------------ *)
(* Browser — everything filtered; the one DEvA-reported bug lives in a
   Fragment-style class our model (like nAdroid's prototype, §8.1) does
   not cover: it is DEvA-visible but nAdroid-invisible (Table 3 last
   row). *)

let browser_hand =
  {|
class WebViewController {
  field int pageCount;
  method void loadPage() { pageCount = pageCount + 1; }
  method void stop() { pageCount = 0; }
}

// Fragment-like class: callbacks named like lifecycle methods but not a
// modeled component — nAdroid's frontend does not track Fragments.
class AccessPrefFragment {
  field WebViewController mCtrlWV;
  method void onResume() { mCtrlWV.loadPage(); }
  method void onDestroy() { mCtrlWV = null; }
}

class Tab {
  field WebViewController controller;
  field bool foreground;
  method void init(WebViewController c) {
    controller = c;
    foreground = false;
  }
  method void show() { foreground = true; }
  method void hide() { foreground = false; }
}

class TabControl {
  field Tab current;
  field int count;
  method Tab openTab() {
    var Tab t = new Tab(new WebViewController());
    count = count + 1;
    current = t;
    return t;
  }
  method void closeCurrent() {
    if (count > 0) {
      count = count - 1;
    }
    current = null;
  }
}

class DownloadReceiver extends BroadcastReceiver {
  field int completed;
  method void onReceive(Intent i) {
    completed = completed + 1;
    log("download " + i2s(completed));
  }
}

class PhoneBrowserActivity extends Activity {
  field TabControl tabs;
  field Handler uiHandler;
  field int pageLoads;

  method void onCreate() {
    tabs = new TabControl();
    uiHandler = new Handler() {
      method void handleMessage(Message m) {
        // progress update from the render path
        pageLoads = pageLoads + 1;
      }
    };
    this.registerReceiver(new BroadcastReceiver() {
      method void onReceive(Intent i) {
        // connectivity change: reload the foreground tab if any
        if (tabs != null) {
          var Tab t = tabs.openTab();
          t.show();
        }
      }
    });
  }

  method void onStart() {
    this.findViewById(820).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        if (tabs != null) {
          var Tab t = tabs.openTab();
          t.show();
          uiHandler.sendEmptyMessage(0);
        }
      }
    });
    this.findViewById(821).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        if (tabs != null) {
          tabs.closeCurrent();
        }
      }
    });
  }

  method void onDestroy() {
    tabs = null;
  }
}
|}

let browser =
  let spec =
    mk_spec "Browser"
      [
        {
          act_name = "BrowserActivity";
          patterns =
            rep 153 P_guarded @ rep 86 P_mhb_lifecycle @ rep 84 P_intra_alloc @ rep 2 P_mhb_service
            @ rep 2 P_mhb_async @ rep 6 P_rhb @ rep 6 P_chb @ rep 12 P_phb @ rep 16 P_ma
            @ rep 12 P_ur @ rep 6 P_tt @ rep 3 P_safe;
        };
        {
          act_name = "TabControlActivity";
          patterns = rep 61 P_guarded @ rep 32 P_mhb_lifecycle @ rep 4 P_intra_alloc @ [ P_ur; P_safe ];
        };
      ]
      0 10
  in
  (browser_hand, spec)

(* ------------------------------------------------------------------ *)
(* ConnectBot — Fig 1(a) and Fig 1(b) verbatim: the single-looper UAFs
   between service-connection callbacks, UI callbacks, and a posted
   Runnable. CAFA reported no callback-callback races here; nAdroid
   found 13 (§2.3). *)

let connectbot_hand =
  {|
class TerminalManager {
  field int sessions;
  method void openSession() { sessions = sessions + 1; }
  method void closeSessions() { sessions = 0; }
}

class HostBridge {
  field int rows;
  method void redraw() { rows = rows + 1; }
}

class ConsoleActivity extends Activity {
  field TerminalManager bound;
  field HostBridge hostBridge;
  field Handler promptHandler;

  method void onCreate() {
    promptHandler = new Handler() {
      method void handleMessage(Message m) { log("prompt"); }
    };
    this.bindService(new ServiceConnection() {
      method void onServiceConnected(Binder b) {
        bound = new TerminalManager();
        hostBridge = new HostBridge();
      }
      method void onServiceDisconnected() {
        bound = null;
        hostBridge = null;
      }
    });
  }

  // Fig 1(a): bound is used without ensuring the service is connected;
  // onServiceDisconnected before onCreateContextMenu crashes.
  method void onCreateContextMenu() {
    bound.openSession();
  }

  method void onStart() {
    // Fig 1(b): the click checks hostBridge != null, then posts a
    // Runnable that dereferences it later, asynchronously.
    this.findViewById(1).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        if (hostBridge != null) {
          promptHandler.post(new Runnable() {
            method void run() { hostBridge.redraw(); }
          });
        }
      }
    });
  }
}

class HostDatabase {
  field int hosts;
  method void addHost() { hosts = hosts + 1; }
  method int countHosts() { return hosts; }
  method void close() { hosts = 0; }
}

class PubkeyMemory {
  field int keysLoaded;
  field bool locked;
  method void unlock() { locked = false; keysLoaded = keysLoaded + 1; }
  method void lock() { locked = true; }
}

class PubkeyService extends Service {
  field PubkeyMemory memory;
  method void onCreate() { memory = new PubkeyMemory(); }
  method void onStartCommand(Intent i) {
    if (memory != null) {
      memory.unlock();
    }
  }
  method void onDestroy() {
    memory.lock();
    memory = null;
  }
}

class PortForwardManager {
  field int active;
  field Data forwardLock;
  method void init(Data l) { forwardLock = l; }
  method void open() {
    synchronized (forwardLock) { active = active + 1; }
  }
  method void closeAll() {
    synchronized (forwardLock) { active = 0; }
  }
}

class HostEditorActivity extends Activity {
  field HostDatabase hostDb;
  field PortForwardManager forwards;
  field Data fwdLock;
  field int edits;

  method void onCreate() {
    hostDb = new HostDatabase();
    fwdLock = new Data();
    forwards = new PortForwardManager(fwdLock);
  }

  method void onStart() {
    this.findViewById(840).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        if (hostDb != null) {
          hostDb.addHost();
          edits = edits + 1;
        }
      }
    });
    this.findViewById(841).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        // port forwards are toggled off a worker, under the shared lock
        new Thread(new Runnable() {
          method void run() {
            if (forwards != null) {
              forwards.open();
            }
          }
        }).start();
      }
    });
  }

  method void onPause() {
    if (forwards != null) {
      forwards.closeAll();
    }
  }

  method void onDestroy() {
    hostDb.close();
    hostDb = null;
  }
}
|}

let connectbot =
  let spec =
    mk_spec "ConnectBot"
      [
        {
          act_name = "HostListActivity";
          patterns =
            rep 11 P_ec_pc_uaf @ rep 46 P_guarded @ rep 32 P_mhb_lifecycle
            @ rep 4 P_intra_alloc @ [ P_mhb_service; P_phb; P_ma; P_ur; P_safe ];
        };
      ]
      1 6
  in
  (connectbot_hand, spec)

(* ------------------------------------------------------------------ *)
(* FireFox — Fig 1(c) verbatim: onResume submits a Runnable to a pool
   thread that nulls jClient; onPause's if-guard is not atomic with the
   use, so the C-NT race is real. *)

let firefox_hand =
  {|
class JavaClient {
  field int refs;
  method void abort() { refs = 0; }
}

class GeckoApp extends Activity {
  field JavaClient jClient;
  field Executor threadPool;

  method void onCreate() {
    threadPool = new Executor();
    jClient = new JavaClient();
  }

  method void onResume() {
    threadPool.execute(new Runnable() {
      method void run() {
        jClient = null;
      }
    });
  }

  method void onPause() {
    // guarded, but the pool thread can interleave between check and use
    if (jClient != null) {
      jClient.abort();
    }
  }
}

class SessionStore {
  field int tabsSaved;
  field bool dirty;
  method void markDirty() { dirty = true; }
  method void flush() {
    if (dirty) {
      tabsSaved = tabsSaved + 1;
      dirty = false;
    }
  }
}

class TelemetryPing {
  field int events;
  method void record() { events = events + 1; }
}

class GeckoSessionActivity extends Activity {
  field SessionStore store;
  field TelemetryPing telemetry;
  field Executor ioPool;
  field Data storeLock;

  method void onCreate() {
    store = new SessionStore();
    telemetry = new TelemetryPing();
    ioPool = new Executor();
    storeLock = new Data();
  }

  method void onPause() {
    // flush the session asynchronously, under the store lock: the
    // guarded cross-thread accesses below are lock-protected and the
    // IG filter keeps them quiet
    ioPool.execute(new Runnable() {
      method void run() {
        synchronized (storeLock) {
          if (store != null) {
            store.flush();
          }
        }
      }
    });
  }

  method void onStart() {
    this.findViewById(830).setOnClickListener(new OnClickListener() {
      method void onClick(View v) {
        synchronized (storeLock) {
          if (store != null) {
            store.markDirty();
          }
        }
        telemetry.record();
      }
    });
  }

  method void onDestroy() {
    synchronized (storeLock) {
      store = null;
    }
    telemetry = null;
  }
}
|}

let firefox =
  let spec =
    mk_spec "FireFox"
      [
        {
          act_name = "GeckoPreferencesActivity";
          patterns =
            rep 133 P_guarded @ rep 65 P_mhb_lifecycle @ rep 63 P_intra_alloc @ rep 2 P_mhb_async
            @ [ P_rhb; P_chb ] @ rep 12 P_phb @ rep 12 P_ma @ rep 9 P_ur @ rep 6 P_tt
            @ rep 12 P_fp_path @ rep 3 P_fp_missing_hb @ rep 2 P_safe;
        };
        {
          act_name = "GeckoTabsActivity";
          patterns =
            rep 71 P_guarded @ rep 32 P_mhb_lifecycle @ rep 6 P_fp_path @ [ P_ur; P_safe ];
        };
      ]
      1 12
  in
  (firefox_hand, spec)

(* ------------------------------------------------------------------ *)

let all : (string * (string * Spec.t)) list =
  [
    ("ToDoList", todolist);
    ("Zxing", zxing);
    ("Music", music);
    ("MyTracks_1", mytracks1);
    ("Browser", browser);
    ("ConnectBot", connectbot);
    ("FireFox", firefox);
  ]
