(* MiniAndroid source generator.

   Expands a {!Spec.t} into compilable MiniAndroid source. Each pattern
   instance gets its own field [fN] (plus helpers [hN], [exN], view id N)
   so instances never interfere; per-activity lifecycle bodies are merged
   from the fragments every pattern contributes. The generator also
   returns the seeded ground truth used by the Table 1 false-positive
   attribution and the Table 2 injection study. *)

type frag = {
  fields : string list;
  on_create : string list;
  on_start : string list;
  on_resume : string list;
  on_pause : string list;
  on_destroy : string list;
  methods : string list;  (** whole member declarations *)
  top_classes : string list;  (** extra top-level classes *)
}

let empty_frag =
  {
    fields = [];
    on_create = [];
    on_start = [];
    on_resume = [];
    on_pause = [];
    on_destroy = [];
    methods = [];
    top_classes = [];
  }

let merge a b =
  {
    fields = a.fields @ b.fields;
    on_create = a.on_create @ b.on_create;
    on_start = a.on_start @ b.on_start;
    on_resume = a.on_resume @ b.on_resume;
    on_pause = a.on_pause @ b.on_pause;
    on_destroy = a.on_destroy @ b.on_destroy;
    methods = a.methods @ b.methods;
    top_classes = a.top_classes @ b.top_classes;
  }

(* A click listener on a fresh view, registered in onStart. *)
let click_listener ~view ~body =
  Printf.sprintf
    "this.findViewById(%d).setOnClickListener(new OnClickListener() { method void \
     onClick(View v) { %s } });"
    view body

(* A service connection binding, registered in onCreate. *)
let service_conn ~connected ~disconnected =
  Printf.sprintf
    "this.bindService(new ServiceConnection() { method void onServiceConnected(Binder b) { %s \
     } method void onServiceDisconnected() { %s } });"
    connected disconnected

let expand ~act (p : Spec.pattern) ~(i : int) : frag =
  let f = Printf.sprintf "f%d" i in
  let fd = Printf.sprintf "field Data %s;" f in
  match p with
  | Spec.P_ec_pc_uaf ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ service_conn ~connected:(f ^ " = new Data();") ~disconnected:(f ^ " = null;") ];
        on_start = [ click_listener ~view:i ~body:(f ^ ".use();") ];
      }
  | Spec.P_pc_pc_uaf ->
      let h = Printf.sprintf "h%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field Handler %s;" h ];
        on_create =
          [
            Printf.sprintf
              "%s = new Handler() { method void handleMessage(Message m) { log(\"%s\"); } };" h h;
            service_conn ~connected:(f ^ " = new Data();") ~disconnected:(f ^ " = null;");
          ];
        on_start =
          [
            click_listener ~view:i
              ~body:
                (Printf.sprintf
                   "if (%s != null) { %s.post(new Runnable() { method void run() { %s.use(); } \
                    }); }"
                   f h f);
          ];
      }
  | Spec.P_c_nt_uaf ->
      (* worker in a separate top-level class: invisible to DEvA *)
      let worker = Printf.sprintf "%sWorker%d" act i in
      let ex = Printf.sprintf "ex%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field Executor %s;" ex ];
        on_create = [ Printf.sprintf "%s = new Executor();" ex; f ^ " = new Data();" ];
        on_resume = [ Printf.sprintf "%s.execute(new %s(this));" ex worker ];
        on_start =
          [ click_listener ~view:i ~body:(Printf.sprintf "if (%s != null) { %s.use(); }" f f) ];
        top_classes =
          [
            Printf.sprintf
              "class %s extends Runnable {\n  field %s owner;\n  method void init(%s o) { owner \
               = o; }\n  method void run() { owner.%s = null; }\n}"
              worker act act f;
          ];
      }
  | Spec.P_c_rt_uaf ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            click_listener ~view:i
              ~body:
                (Printf.sprintf
                   "new Thread(new Runnable() { method void run() { %s = null; } }).start(); \
                    %s.use();"
                   f f);
          ];
      }
  | Spec.P_ec_ec_uaf ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            click_listener ~view:(2 * i) ~body:(f ^ ".use();");
            click_listener ~view:((2 * i) + 1) ~body:(f ^ " = null;");
          ];
      }
  | Spec.P_guarded ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ service_conn ~connected:(f ^ " = new Data();") ~disconnected:(f ^ " = null;") ];
        on_start =
          [ click_listener ~view:i ~body:(Printf.sprintf "if (%s != null) { %s.use(); }" f f) ];
      }
  | Spec.P_guarded_locked ->
      let lock = Printf.sprintf "lock%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field Data %s;" lock ];
        on_create = [ Printf.sprintf "%s = new Data();" lock; f ^ " = new Data();" ];
        on_resume =
          [
            Printf.sprintf
              "new Thread(new Runnable() { method void run() { synchronized (%s) { %s = null; } \
               } }).start();"
              lock f;
          ];
        on_start =
          [
            click_listener ~view:i
              ~body:
                (Printf.sprintf "synchronized (%s) { if (%s != null) { %s.use(); } }" lock f f);
          ];
      }
  | Spec.P_intra_alloc ->
      {
        empty_frag with
        fields = [ fd ];
        on_start =
          [
            click_listener ~view:(2 * i) ~body:(Printf.sprintf "%s = new Data(); %s.use();" f f);
            click_listener ~view:((2 * i) + 1) ~body:(f ^ " = null;");
          ];
      }
  | Spec.P_mhb_service ->
      {
        empty_frag with
        fields = [ fd ];
        on_create =
          [
            service_conn
              ~connected:(Printf.sprintf "%s = new Data(); %s.use();" f f)
              ~disconnected:(f ^ " = null;");
          ];
      }
  | Spec.P_mhb_lifecycle ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ f ^ " = new Data();" ];
        on_destroy = [ f ^ " = null;" ];
        on_start = [ click_listener ~view:i ~body:(f ^ ".use();") ];
      }
  | Spec.P_mhb_async ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            click_listener ~view:i
              ~body:
                (Printf.sprintf
                   "new AsyncTask() { method void onPreExecute() { %s.use(); } method void \
                    doInBackground() { log(\"bg%d\"); } method void onPostExecute() { %s = \
                    null; } }.execute();"
                   f i f);
          ];
      }
  | Spec.P_rhb ->
      {
        empty_frag with
        fields = [ fd ];
        on_resume = [ f ^ " = new Data();" ];
        on_pause = [ f ^ " = null;" ];
        on_start = [ click_listener ~view:i ~body:(f ^ ".use();") ];
      }
  | Spec.P_chb ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            click_listener ~view:(2 * i) ~body:(Printf.sprintf "%s = null; finish();" f);
            click_listener ~view:((2 * i) + 1) ~body:(f ^ ".use();");
          ];
      }
  | Spec.P_phb ->
      let h = Printf.sprintf "h%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field Handler %s;" h ];
        on_create =
          [
            f ^ " = new Data();";
            Printf.sprintf
              "%s = new Handler() { method void handleMessage(Message m) { %s = null; } };" h f;
          ];
        on_start =
          [
            click_listener ~view:i
              ~body:(Printf.sprintf "%s.use(); %s.sendEmptyMessage(0);" f h);
          ];
      }
  | Spec.P_ma ->
      let mk = Printf.sprintf "mk%d" i in
      {
        empty_frag with
        fields = [ fd ];
        methods = [ Printf.sprintf "method Data %s() { return new Data(); }" mk ];
        on_create = [ service_conn ~connected:"log(\"c\");" ~disconnected:(f ^ " = null;") ];
        on_start =
          [ click_listener ~view:i ~body:(Printf.sprintf "%s = %s(); %s.use();" f mk f) ];
      }
  | Spec.P_ur ->
      let peek = Printf.sprintf "peek%d" i in
      {
        empty_frag with
        fields = [ fd ];
        methods = [ Printf.sprintf "method Data %s() { return %s; }" peek f ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            click_listener ~view:(2 * i)
              ~body:(Printf.sprintf "if (%s() != null) { log(\"ok%d\"); }" peek i);
            click_listener ~view:((2 * i) + 1) ~body:(f ^ " = null;");
          ];
      }
  | Spec.P_tt ->
      {
        empty_frag with
        fields = [ fd ];
        on_create = [ f ^ " = new Data();" ];
        on_resume =
          [
            Printf.sprintf
              "new Thread(new Runnable() { method void run() { %s = null; } }).start();" f;
            Printf.sprintf
              "new Thread(new Runnable() { method void run() { if (%s != null) { %s.use(); } } \
               }).start();"
              f f;
          ];
      }
  | Spec.P_fp_path ->
      let ready = Printf.sprintf "ready%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field bool %s;" ready ];
        on_create =
          [
            service_conn
              ~connected:(Printf.sprintf "%s = new Data(); %s = true;" f ready)
              ~disconnected:(Printf.sprintf "%s = false; %s = null;" ready f);
          ];
        on_start =
          [ click_listener ~view:i ~body:(Printf.sprintf "if (%s) { %s.use(); }" ready f) ];
      }
  | Spec.P_fp_missing_hb ->
      let btn = Printf.sprintf "btn%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field View %s;" btn ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            Printf.sprintf
              "%s = this.findViewById(%d); %s.setOnClickListener(new OnClickListener() { \
               method void onClick(View v) { %s.use(); } });"
              btn (2 * i) btn f;
            click_listener ~view:((2 * i) + 1)
              ~body:(Printf.sprintf "%s.setEnabled(false); %s = null;" btn f);
          ];
      }
  | Spec.P_inj_unmodeled ->
      let frag = Printf.sprintf "%sFrag%d" act i in
      {
        empty_frag with
        fields = [ fd ];
        on_create =
          [ f ^ " = new Data();"; Printf.sprintf "var %s fr%d = new %s(this);" frag i frag ];
        on_start = [ click_listener ~view:i ~body:(f ^ " = null;") ];
        top_classes =
          [
            Printf.sprintf
              "class %s {\n  field %s owner;\n  method void init(%s o) { owner = o; }\n  // \
               fragment-style callback: invoked by a framework facility the\n  // model does \
               not cover, so statically unreachable\n  method void onOverlayDraw() { \
               owner.%s.use(); }\n}"
              frag act act f;
          ];
      }
  | Spec.P_chb_error_path ->
      let c = Printf.sprintf "errs%d" i in
      {
        empty_frag with
        fields = [ fd; Printf.sprintf "field int %s;" c ];
        on_create = [ f ^ " = new Data();" ];
        on_start =
          [
            click_listener ~view:(2 * i)
              ~body:
                (Printf.sprintf "if (%s > 9000) { finish(); } %s = null;" c f);
            click_listener ~view:((2 * i) + 1) ~body:(f ^ ".use();");
          ];
      }
  | Spec.P_safe ->
      let c = Printf.sprintf "count%d" i in
      let s = Printf.sprintf "s%d" i in
      {
        empty_frag with
        fields = [ Printf.sprintf "field int %s;" c; Printf.sprintf "field Data %s;" s ];
        on_create = [ Printf.sprintf "%s = new Data();" s ];
        on_start =
          [
            click_listener ~view:i
              ~body:
                (Printf.sprintf "%s = %s + 1; if (%s != null) { %s.use(); }" c c s s);
          ];
      }

let indent n s =
  let pad = String.make n ' ' in
  String.concat "\n" (List.map (fun l -> if l = "" then l else pad ^ l) (String.split_on_char '\n' s))

let method_of name stmts =
  match stmts with
  | [] -> None
  | _ :: _ ->
      Some
        (Printf.sprintf "method void %s() {\n%s\n}" name
           (String.concat "\n" (List.map (indent 2) stmts)))

let gen_activity (a : Spec.activity_spec) : string list * Spec.seeded list =
  let frags = List.mapi (fun i p -> (i, p, expand ~act:a.Spec.act_name p ~i)) a.Spec.patterns in
  let all = List.fold_left (fun acc (_, _, fr) -> merge acc fr) empty_frag frags in
  let members =
    List.map (fun f -> f) all.fields
    @ List.filter_map
        (fun (name, stmts) -> method_of name stmts)
        [
          ("onCreate", all.on_create);
          ("onStart", all.on_start);
          ("onResume", all.on_resume);
          ("onPause", all.on_pause);
          ("onDestroy", all.on_destroy);
        ]
    @ all.methods
  in
  let cls =
    Printf.sprintf "class %s extends Activity {\n%s\n}" a.Spec.act_name
      (String.concat "\n" (List.map (indent 2) members))
  in
  let seeded =
    List.map
      (fun (i, p, _) ->
        {
          Spec.sd_app = "";
          sd_activity = a.Spec.act_name;
          sd_pattern = p;
          sd_field = Printf.sprintf "f%d" i;
          sd_expect = Spec.expectation p;
        })
      frags
  in
  (cls :: all.top_classes, seeded)

let data_class =
  "class Data {\n  field int n;\n  method void use() { n = n + 1; }\n  method void abort() { n \
   = 0; }\n}"

let padding_class j =
  Printf.sprintf
    "class Util%d {\n  field int acc;\n  method int twice(int x) { return x + x; }\n  method \
     int saturate(int x) {\n    if (x > 100) {\n      return 100;\n    }\n    return x;\n  }\n  \
     method void bump(int d) { acc = acc + this.saturate(d); }\n}"
    j

let service_class j =
  Printf.sprintf
    "class BgService%d extends Service {\n  field int starts;\n  method void onCreate() { \
     starts = 0; }\n  method void onStartCommand(Intent i) { starts = starts + 1; }\n  method \
     void onDestroy() { log(\"svc%d done\"); }\n}"
    j j

let generate (spec : Spec.t) : string * Spec.seeded list =
  let per_act = List.map gen_activity spec.Spec.activities in
  let classes =
    [ data_class ]
    @ List.concat_map fst per_act
    @ List.init spec.Spec.services service_class
    @ List.init spec.Spec.padding padding_class
  in
  let seeded =
    List.concat_map (fun (_, s) -> List.map (fun sd -> { sd with Spec.sd_app = spec.Spec.app_name }) s) per_act
  in
  (String.concat "\n\n" classes ^ "\n", seeded)
