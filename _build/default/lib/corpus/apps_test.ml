(* The 20-app "test" group (Table 1, bottom): 6 DroidRacer subjects plus
   14 popular F-Droid applications. Specs are calibrated so that the
   aggregate shape tracks Table 1: most potential warnings die under the
   sound filters (if-guards dominating), unsound filters kill ~70% of the
   remainder, and the surviving true bugs sit in Aard (C-RT),
   MyTracks_2 and QKSMS (EC-PC) — 45 in total, which together with the
   train group's 43 reproduce the paper's 88. *)

open Spec

let rep n p = List.init n (fun _ -> p)

let app name ?(services = 0) ?(padding = 1) acts : Spec.t =
  { app_name = name; activities = acts; services; padding }

let act name patterns : Spec.activity_spec = { act_name = name; patterns }

let sound_recorder =
  app "SoundRecorder"
    [ act "RecorderActivity" (rep 20 P_guarded @ [ P_mhb_lifecycle; P_safe ]) ]

let swiftnotes = app "Swiftnotes" [ act "NotesActivity" (rep 3 P_safe) ]

let photo_affix =
  app "PhotoAffix"
    [
      act "AffixActivity"
        (rep 31 P_guarded @ rep 22 P_mhb_lifecycle
        @ rep 4 P_intra_alloc @ [ P_rhb; P_ur; P_fp_path; P_fp_path; P_fp_missing_hb; P_fp_missing_hb ]);
    ]

let ml_manager =
  app "MLManager" ~padding:2
    [
      act "AppsActivity"
        (rep 61 P_guarded @ rep 43 P_mhb_lifecycle @ rep 42 P_intra_alloc @ rep 12 P_ma
        @ rep 9 P_ur @ rep 6 P_tt @ [ P_phb; P_chb; P_rhb; P_safe ]);
    ]

let insta_material =
  app "InstaMaterial" ~padding:3
    [
      act "FeedActivity"
        (rep 102 P_guarded @ rep 54 P_mhb_lifecycle @ rep 63 P_intra_alloc @ rep 16 P_ma
        @ rep 12 P_ur @ rep 6 P_tt @ rep 12 P_phb @ [ P_rhb; P_chb; P_mhb_async; P_safe ]);
    ]

let tomdroid = app "Tomdroid" [ act "TomdroidActivity" (rep 3 P_safe) ]

let sgt_puzzles =
  app "SGTPuzzles"
    [
      act "GameActivity"
        (rep 51 P_guarded @ rep 32 P_mhb_lifecycle @ rep 42 P_intra_alloc @ [ P_mhb_service; P_safe ]);
    ]

let aard =
  app "Aard" ~padding:2
    [
      act "ArticleViewActivity"
        (rep 8 P_c_rt_uaf @ rep 41 P_guarded @ rep 32 P_mhb_lifecycle @ rep 8 P_ma @ rep 6 P_ur
        @ [ P_tt ] @ rep 5 P_fp_path @ rep 2 P_fp_missing_hb @ [ P_safe ]);
    ]

let clip_stack =
  app "ClipStack" [ act "ClipboardActivity" (rep 10 P_guarded @ [ P_mhb_lifecycle; P_safe ]) ]

let kiss_launcher =
  app "KissLauncher" ~padding:2
    [
      act "LauncherActivity"
        (rep 41 P_guarded @ rep 22 P_mhb_lifecycle @ [ P_ma; P_ur; P_tt ] @ rep 6 P_fp_missing_hb);
    ]

let dash_clock =
  app "DashClock"
    [ act "ClockActivity" (rep 20 P_guarded @ rep 22 P_mhb_lifecycle @ [ P_ur; P_safe ]) ]

let dns66 =
  app "Dns66" ~services:1
    [
      act "VpnActivity"
        (rep 26 P_guarded @ rep 22 P_mhb_lifecycle @ rep 5 P_fp_path @ [ P_fp_missing_hb; P_safe ]);
    ]

let clean_master =
  app "CleanMaster" [ act "CleanActivity" (rep 15 P_guarded @ [ P_mhb_lifecycle ]) ]

let omni_notes =
  app "OmniNotes" ~padding:8
    [
      act "NotesListActivity"
        (rep 92 P_guarded @ rep 65 P_mhb_lifecycle @ rep 63 P_intra_alloc @ rep 16 P_ma
        @ rep 12 P_ur @ rep 6 P_tt @ rep 6 P_rhb @ rep 6 P_chb @ rep 12 P_phb @ rep 2 P_safe);
      act "DetailActivity" (rep 41 P_guarded @ rep 22 P_mhb_lifecycle @ [ P_ma; P_safe ]);
    ]

let solitaire =
  app "Solitaire"
    [ act "SolitaireActivity" (rep 20 P_guarded @ [ P_fp_missing_hb; P_ma; P_ur; P_safe ]) ]

let mms =
  app "Mms" ~services:2 ~padding:10
    [
      act "ComposeMessageActivity"
        (rep 76 P_guarded @ rep 54 P_mhb_lifecycle @ rep 42 P_intra_alloc @ rep 2 P_mhb_service
        @ rep 16 P_ma @ rep 12 P_ur @ rep 6 P_tt @ rep 6 P_rhb @ rep 6 P_chb @ rep 12 P_phb
        @ rep 10 P_fp_path @ rep 3 P_fp_missing_hb @ rep 2 P_safe);
      act "ConversationListActivity"
        (rep 51 P_guarded @ rep 32 P_mhb_lifecycle @ rep 42 P_intra_alloc @ rep 8 P_ma
        @ rep 6 P_ur @ [ P_tt ] @ rep 5 P_fp_path @ rep 2 P_fp_missing_hb @ [ P_safe ]);
    ]

let mytracks2 =
  app "MyTracks_2" ~services:1 ~padding:4
    [
      act "TrackListActivity2"
        (rep 14 P_ec_pc_uaf @ rep 41 P_guarded @ rep 22 P_mhb_lifecycle @ [ P_ma; P_ur ]
        @ rep 3 P_fp_path @ [ P_fp_missing_hb; P_safe ]);
      act "StatsActivity2"
        (rep 13 P_ec_pc_uaf @ rep 20 P_guarded @ rep 22 P_mhb_lifecycle
        @ [ P_ma; P_ur; P_fp_path; P_fp_path; P_fp_missing_hb; P_safe ]);
    ]

let mi_manga_nu =
  app "MiMangaNu" [ act "MangaActivity" (rep 10 P_guarded @ [ P_ur; P_safe ]) ]

let qksms =
  app "QKSMS" ~services:1 ~padding:4
    [
      act "QkComposeActivity"
        (rep 10 P_ec_pc_uaf @ rep 61 P_guarded @ rep 43 P_mhb_lifecycle @ rep 8 P_ma
        @ rep 6 P_ur @ [ P_tt ] @ rep 5 P_fp_path @ rep 4 P_fp_missing_hb @ [ P_safe ]);
    ]

let k9_mail =
  app "K9Mail" ~services:2 ~padding:15
    [
      act "MessageListActivity"
        (rep 71 P_guarded @ rep 43 P_mhb_lifecycle @ rep 42 P_intra_alloc @ rep 12 P_ma
        @ rep 9 P_ur @ rep 6 P_tt @ [ P_rhb; P_chb; P_phb ] @ rep 8 P_fp_path
        @ rep 3 P_fp_missing_hb @ [ P_safe ]);
      act "MessageComposeActivity"
        (rep 51 P_guarded @ rep 43 P_mhb_lifecycle @ rep 42 P_intra_alloc @ rep 12 P_ma
        @ rep 9 P_ur @ [ P_tt; P_rhb; P_chb; P_phb ] @ rep 7 P_fp_path @ rep 3 P_fp_missing_hb);
      act "FolderListActivity"
        (rep 31 P_guarded @ rep 22 P_mhb_lifecycle @ [ P_ma; P_ur ] @ rep 5 P_fp_path
        @ rep 2 P_fp_missing_hb @ [ P_safe ]);
    ]

(* In Table 1 order. *)
let all : Spec.t list =
  [
    sound_recorder;
    swiftnotes;
    photo_affix;
    ml_manager;
    insta_material;
    tomdroid;
    sgt_puzzles;
    aard;
    clip_stack;
    kiss_launcher;
    dash_clock;
    dns66;
    clean_master;
    omni_notes;
    solitaire;
    mms;
    mytracks2;
    mi_manga_nu;
    qksms;
    k9_mail;
  ]
