(** MiniAndroid source generator: expands a {!Spec.t} into compilable
    source plus the seeded ground truth used by the Table 1
    false-positive attribution and the Table 2 injection study.

    Every pattern instance owns its field [fN] (plus helpers and a view
    id) so instances never interfere; per-activity lifecycle bodies are
    merged from the fragments each pattern contributes. Generation is
    deterministic. *)

val generate : Spec.t -> string * Spec.seeded list
