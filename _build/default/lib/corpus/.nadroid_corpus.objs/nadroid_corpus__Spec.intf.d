lib/corpus/spec.mli: Fmt Nadroid_core
