lib/corpus/spec.ml: Fmt Nadroid_core
