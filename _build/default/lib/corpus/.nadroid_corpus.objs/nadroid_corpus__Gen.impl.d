lib/corpus/gen.ml: List Printf Spec String
