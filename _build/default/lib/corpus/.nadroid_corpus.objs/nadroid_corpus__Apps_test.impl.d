lib/corpus/apps_test.ml: List Spec
