lib/corpus/corpus.mli: Lazy Nadroid_core Spec
