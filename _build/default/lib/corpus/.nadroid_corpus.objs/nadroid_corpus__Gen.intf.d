lib/corpus/gen.mli: Spec
