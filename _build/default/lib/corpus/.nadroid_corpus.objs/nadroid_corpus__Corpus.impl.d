lib/corpus/corpus.ml: Apps_test Apps_train Astring Gen Lazy List Nadroid_core Spec String
