lib/corpus/apps_train.ml: List Spec
