(* Bug / idiom patterns seeded into generated corpus apps.

   Each pattern is a self-contained code idiom instantiated on its own
   field [fN]; the generator ({!Gen}) expands it into fields, lifecycle
   fragments, listeners and helper classes. Every pattern carries a
   ground-truth expectation: whether nAdroid should report it as a true
   harmful UAF (and of which origin category), prune it (and with which
   filter), or report a false positive (and from which §8.5 source). *)

type pattern =
  (* true harmful UAFs *)
  | P_ec_pc_uaf  (** Fig 1(a): service disconnect frees, UI callback uses *)
  | P_pc_pc_uaf  (** Fig 1(b): posted runnable uses, disconnect frees *)
  | P_c_nt_uaf  (** Fig 1(c): separate worker class on a pool thread vs looper *)
  | P_c_rt_uaf  (** thread spawned by the racing callback itself *)
  | P_ec_ec_uaf  (** unguarded use in one UI callback, free in another *)
  (* soundly filtered idioms *)
  | P_guarded  (** IG: null-check inside an atomic callback *)
  | P_guarded_locked  (** IG across threads, protected by a common lock *)
  | P_intra_alloc  (** IA: allocation before use in the same callback *)
  | P_mhb_service  (** MHB-Service: use in onServiceConnected, free in onServiceDisconnected *)
  | P_mhb_lifecycle  (** MHB-Lifecycle: free in onDestroy *)
  | P_mhb_async  (** MHB-AsyncTask: use in onPreExecute, free in onPostExecute *)
  (* unsoundly filtered idioms *)
  | P_rhb  (** onResume restores the field freed in onPause *)
  | P_chb  (** canceller calls finish() before freeing *)
  | P_phb  (** use happens before posting the freeing handler message *)
  | P_ma  (** getter-allocation before use *)
  | P_ur  (** use flows only to a return *)
  | P_tt  (** both accesses on native threads *)
  (* surviving false positives, by §8.5 source *)
  | P_fp_path  (** high-level boolean flag keeps the path infeasible *)
  | P_fp_missing_hb  (** one callback disables the other's button *)
  (* injection-study patterns (Table 2) *)
  | P_inj_unmodeled
      (** the use sits in a fragment-like callback outside the modeled API
          surface: nAdroid's call graph never reaches it (§8.6's
          framework-mediated misses) *)
  | P_chb_error_path
      (** real UAF whose freeing callback calls finish() only on an
          unreachable error path: the may-analysis CHB filter wrongly
          prunes it (§8.6) *)
  (* inert padding *)
  | P_safe  (** allocations, guarded atomic uses, primitive churn *)

let all_patterns =
  [
    P_ec_pc_uaf;
    P_pc_pc_uaf;
    P_c_nt_uaf;
    P_c_rt_uaf;
    P_ec_ec_uaf;
    P_guarded;
    P_guarded_locked;
    P_intra_alloc;
    P_mhb_service;
    P_mhb_lifecycle;
    P_mhb_async;
    P_rhb;
    P_chb;
    P_phb;
    P_ma;
    P_ur;
    P_tt;
    P_fp_path;
    P_fp_missing_hb;
    P_inj_unmodeled;
    P_chb_error_path;
    P_safe;
  ]

let pattern_to_string = function
  | P_ec_pc_uaf -> "ec-pc-uaf"
  | P_pc_pc_uaf -> "pc-pc-uaf"
  | P_c_nt_uaf -> "c-nt-uaf"
  | P_c_rt_uaf -> "c-rt-uaf"
  | P_ec_ec_uaf -> "ec-ec-uaf"
  | P_guarded -> "guarded"
  | P_guarded_locked -> "guarded-locked"
  | P_intra_alloc -> "intra-alloc"
  | P_mhb_service -> "mhb-service"
  | P_mhb_lifecycle -> "mhb-lifecycle"
  | P_mhb_async -> "mhb-async"
  | P_rhb -> "rhb"
  | P_chb -> "chb"
  | P_phb -> "phb"
  | P_ma -> "ma"
  | P_ur -> "ur"
  | P_tt -> "tt"
  | P_fp_path -> "fp-path"
  | P_fp_missing_hb -> "fp-missing-hb"
  | P_inj_unmodeled -> "inj-unmodeled"
  | P_chb_error_path -> "chb-error-path"
  | P_safe -> "safe"

let pp_pattern ppf p = Fmt.string ppf (pattern_to_string p)

(* §8.5 false-positive sources. *)
type fp_cause = Fp_path_insensitive | Fp_points_to | Fp_not_reachable | Fp_missing_hb

let fp_cause_to_string = function
  | Fp_path_insensitive -> "path-insens"
  | Fp_points_to -> "points-to"
  | Fp_not_reachable -> "not-reach"
  | Fp_missing_hb -> "missing-hb"

type expectation =
  | E_true_bug of Nadroid_core.Classify.category
  | E_filtered of Nadroid_core.Filters.name
  | E_false_positive of fp_cause
  | E_none  (** no warning at all *)

let expectation = function
  | P_ec_pc_uaf -> E_true_bug Nadroid_core.Classify.EC_PC
  | P_pc_pc_uaf -> E_true_bug Nadroid_core.Classify.PC_PC
  | P_c_nt_uaf -> E_true_bug Nadroid_core.Classify.C_NT
  | P_c_rt_uaf -> E_true_bug Nadroid_core.Classify.C_RT
  | P_ec_ec_uaf -> E_true_bug Nadroid_core.Classify.EC_EC
  | P_guarded | P_guarded_locked -> E_filtered Nadroid_core.Filters.IG
  | P_intra_alloc -> E_filtered Nadroid_core.Filters.IA
  | P_mhb_service | P_mhb_lifecycle | P_mhb_async -> E_filtered Nadroid_core.Filters.MHB
  | P_rhb -> E_filtered Nadroid_core.Filters.RHB
  | P_chb -> E_filtered Nadroid_core.Filters.CHB
  | P_phb -> E_filtered Nadroid_core.Filters.PHB
  | P_ma -> E_filtered Nadroid_core.Filters.MA
  | P_ur -> E_filtered Nadroid_core.Filters.UR
  | P_tt -> E_filtered Nadroid_core.Filters.TT
  | P_fp_path -> E_false_positive Fp_path_insensitive
  | P_fp_missing_hb -> E_false_positive Fp_missing_hb
  | P_inj_unmodeled -> E_none  (* a real bug nAdroid cannot see *)
  | P_chb_error_path -> E_filtered Nadroid_core.Filters.CHB  (* wrongly pruned real bug *)
  | P_safe -> E_none

type activity_spec = { act_name : string; patterns : pattern list }

type t = {
  app_name : string;
  activities : activity_spec list;
  services : int;  (** bare background services, for the T column *)
  padding : int;  (** extra inert helper classes, for LOC realism *)
}

(* Ground truth for one seeded pattern instance. *)
type seeded = {
  sd_app : string;
  sd_activity : string;
  sd_pattern : pattern;
  sd_field : string;  (** unqualified field name, e.g. "f3" *)
  sd_expect : expectation;
}
