(* Thread-escape analysis.

   An abstract object escapes when it can be reached by more than one
   abstract thread (entry-callback root or framework-dispatched callback /
   spawned thread) or through a static field. Races are only reported on
   escaping objects — the standard Chord pipeline step (§5).

   Thread entries are the points-to roots plus the targets of API edges
   (posted callbacks, spawned runnables): exactly the nodes that
   threadification turns into threads. *)

module IntSet = Pta.IntSet

type t = {
  escaping : IntSet.t;  (** object ids accessible to >= 2 threads or statics *)
  accessed_by : (int, IntSet.t) Hashtbl.t;  (** thread entry instance -> objects it may touch *)
}

(* Instances reachable from [entry] through ordinary calls. *)
let intra_thread_instances pta entry : IntSet.t =
  let seen = ref IntSet.empty in
  let rec go i =
    if not (IntSet.mem i !seen) then begin
      seen := IntSet.add i !seen;
      List.iter go (Pta.ordinary_succs pta i)
    end
  in
  go entry;
  !seen

(* One pass over the points-to table, grouping objects by instance and
   building the field-successor map — [run] then works off these maps
   instead of rescanning the table per thread entry. *)
let index_pts pta : (int, IntSet.t) Hashtbl.t * (int, IntSet.t) Hashtbl.t * IntSet.t =
  let by_inst = Hashtbl.create 256 in
  let by_field = Hashtbl.create 256 in
  let statics = ref IntSet.empty in
  let add tbl key s =
    match Hashtbl.find_opt tbl key with
    | Some cur -> Hashtbl.replace tbl key (IntSet.union cur s)
    | None -> Hashtbl.replace tbl key s
  in
  Hashtbl.iter
    (fun node s ->
      match node with
      | Pta.Nvar (i, _) | Pta.Nret i -> add by_inst i !s
      | Pta.Nfld (o, _) -> add by_field o !s
      | Pta.Nstatic _ -> statics := IntSet.union !statics !s)
    pta.Pta.pts;
  (by_inst, by_field, !statics)

let lookup tbl key = Option.value ~default:IntSet.empty (Hashtbl.find_opt tbl key)

(* All objects in scope of a set of instances. *)
let objects_of_instances by_inst insts : IntSet.t =
  IntSet.fold (fun i acc -> IntSet.union acc (lookup by_inst i)) insts IntSet.empty

(* Close a set of objects under field reachability. *)
let field_closure by_field objs : IntSet.t =
  let seen = ref IntSet.empty in
  let rec go oid =
    if not (IntSet.mem oid !seen) then begin
      seen := IntSet.add oid !seen;
      IntSet.iter go (lookup by_field oid)
    end
  in
  IntSet.iter go objs;
  !seen

let thread_entries pta : int list =
  let roots = List.map (fun r -> r.Pta.r_instance) (Pta.roots pta) in
  let posted =
    List.filter_map
      (fun e -> match e.Pta.ce_kind with Pta.E_api _ -> Some e.Pta.ce_to | Pta.E_ordinary -> None)
      (Pta.edges pta)
  in
  List.sort_uniq Int.compare (roots @ posted)

let run (pta : Pta.t) : t =
  let by_inst, by_field, statics = index_pts pta in
  let entries = thread_entries pta in
  let accessed_by = Hashtbl.create 32 in
  List.iter
    (fun entry ->
      let insts = intra_thread_instances pta entry in
      let objs = field_closure by_field (objects_of_instances by_inst insts) in
      Hashtbl.replace accessed_by entry objs)
    entries;
  (* statics escape unconditionally *)
  let static_escape = field_closure by_field statics in
  (* objects seen by at least two thread entries *)
  let counts = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ objs ->
      IntSet.iter
        (fun oid ->
          Hashtbl.replace counts oid (1 + Option.value ~default:0 (Hashtbl.find_opt counts oid)))
        objs)
    accessed_by;
  let multi =
    Hashtbl.fold (fun oid n acc -> if n >= 2 then IntSet.add oid acc else acc) counts IntSet.empty
  in
  { escaping = IntSet.union static_escape multi; accessed_by }

let escapes t oid = IntSet.mem oid t.escaping

let n_escaping t = IntSet.cardinal t.escaping
