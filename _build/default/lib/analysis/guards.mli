(** Per-body guard and allocation analyses feeding nAdroid's filters:
    If-Guard (must-non-null dataflow over branch facts, plus null-checked
    locals closed through moves), Intra-Allocation (must-allocated
    fields), Maybe-Allocation (getter results as pseudo-allocations,
    unsound), Used-for-Return, and the may-allocation query behind the
    Resume-Happens-Before filter. *)

open Nadroid_ir

type t

val analyze : Cfg.body -> t

val is_guarded_use : t -> instr:Instr.t -> bool
(** IG (§6.1.2): the use (a [getfield]) is protected by an if-guard. *)

val is_must_alloc_use : t -> instr:Instr.t -> bool
(** IA (§6.1.3): the field is freshly allocated on every path to the use. *)

val is_maybe_alloc_use : t -> instr:Instr.t -> bool
(** MA (§6.2.2): like IA but accepting getter-call results (unsound). *)

val is_used_for_return : t -> instr:Instr.t -> bool
(** UR (§6.2.3): the loaded value flows only to returns, call arguments
    or null comparisons. *)

val may_allocates : t -> Instr.fref -> bool
(** RHB support (§6.2.1): does the body allocate the field on some path? *)
