lib/analysis/guards.mli: Cfg Instr Nadroid_ir
