lib/analysis/pta.mli: Fmt Hashtbl Instr Nadroid_android Nadroid_ir Prog Set
