lib/analysis/lockset.mli: Pta
