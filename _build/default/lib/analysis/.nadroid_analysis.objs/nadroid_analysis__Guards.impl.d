lib/analysis/guards.ml: Array Ast Cfg Dataflow Hashtbl Instr List Nadroid_ir Nadroid_lang Option Sema Set String
