lib/analysis/pta.ml: Api Array Ast Callback Cfg Component Fmt Hashtbl Instr Int List Loc Nadroid_android Nadroid_ir Nadroid_lang Prog Sema Set String
