lib/analysis/escape.ml: Hashtbl Int List Option Pta
