lib/analysis/escape.mli: Hashtbl Pta
