lib/analysis/lockset.ml: Cfg Dataflow Escape Hashtbl Instr List Nadroid_ir Option Prog Pta
