(* Per-body guard and allocation analyses feeding nAdroid's filters:

   - {b IG} (§6.1.2): is a [getfield] protected by a preceding
     [if (f != null)] (must-non-null dataflow over the facts recorded on
     branch edges), or is the loaded value itself null-checked afterwards?
   - {b IA} (§6.1.3): is the field definitely assigned a fresh allocation
     on every path from the callback entry to the use?
   - {b MA} (§6.2.2): same, but also accepting getter-call results as
     pseudo-allocations (unsound).
   - {b UR} (§6.2.3): is the loaded value used only for return / as a call
     argument / in null comparisons?
   - {b RHB} support (§6.2.1): does the body allocate the field on some
     path (may-analysis)? *)

open Nadroid_lang
open Nadroid_ir
module SSet = Set.Make (String)

type t = {
  body : Cfg.body;
  (* must-non-null field keys before each instruction *)
  nonnull_before : (int, SSet.t) Hashtbl.t;
  (* must-allocated (new) field keys before each instruction *)
  alloc_before : (int, SSet.t) Hashtbl.t;
  (* must-allocated-or-getter field keys before each instruction *)
  maybe_alloc_before : (int, SSet.t) Hashtbl.t;
  (* fields null-checked anywhere in the body (via a local) *)
  checked_vars : (int, unit) Hashtbl.t;  (* var ids appearing in nonnull facts *)
  (* fields assigned a fresh allocation on at least one path *)
  may_alloc : SSet.t;
  (* var id -> instrs using it, for UR *)
  uses_of : (int, Instr.t list) Hashtbl.t;
}

let field_key (fr : Instr.fref) = fr.Sema.fr_class ^ "." ^ fr.Sema.fr_name

(* Vars that definitely hold a fresh allocation: single-def vars defined
   by New, closed under single-def Moves. Lowering gives each [new]
   expression its own temp, so this is precise for the common patterns. *)
let fresh_vars ?(getters_count = false) (body : Cfg.body) : (int, unit) Hashtbl.t =
  let def_count = Hashtbl.create 32 in
  let bump v = Hashtbl.replace def_count v.Instr.v_id (1 + Option.value ~default:0 (Hashtbl.find_opt def_count v.Instr.v_id)) in
  Cfg.iter_instrs (fun ins -> List.iter bump (Instr.defs ins)) body;
  let single_def v = Hashtbl.find_opt def_count v.Instr.v_id = Some 1 in
  let fresh = Hashtbl.create 16 in
  let changed = ref true in
  while !changed do
    changed := false;
    Cfg.iter_instrs
      (fun ins ->
        let mark v =
          if single_def v && not (Hashtbl.mem fresh v.Instr.v_id) then begin
            Hashtbl.replace fresh v.Instr.v_id ();
            changed := true
          end
        in
        match ins.Instr.i with
        | Instr.New (d, _, _, _) -> mark d
        | Instr.Call (Some d, _, ms, _) when getters_count -> (
            match ms.Sema.ms_ret with
            | Ast.Tclass _ -> mark d
            | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid -> ())
        | Instr.Move (d, s) -> if Hashtbl.mem fresh s.Instr.v_id then mark d
        | Instr.Call _ | Instr.Const _ | Instr.Getfield _ | Instr.Putfield _
        | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _ | Instr.Unop _
        | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
            ())
      body
  done;
  fresh

(* Forward must-analysis over field keys with a gen/kill [gen_put]
   discipline; conditional edges can contribute facts. *)
let must_fields (body : Cfg.body) ~(gen_put : Instr.t -> string option)
    ~(edge_facts : bool) : (int, SSet.t) Hashtbl.t =
  let module D = Dataflow in
  (* finite universe of field keys mentioned in the body *)
  let universe = ref SSet.empty in
  Cfg.iter_instrs
    (fun ins ->
      match ins.Instr.i with
      | Instr.Getfield (_, _, fr) | Instr.Putfield (_, fr, _, _) | Instr.Getstatic (_, fr)
      | Instr.Putstatic (fr, _, _) ->
          universe := SSet.add (field_key fr) !universe
      | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Call _ | Instr.Intrinsic _
      | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
          ())
    body;
  Array.iter
    (fun blk ->
      match blk.Cfg.b_term with
      | Cfg.If { t_facts; f_facts; _ } ->
          List.iter
            (function
              | Cfg.Nn_field fr -> universe := SSet.add (field_key fr) !universe
              | Cfg.Nn_var _ -> ())
            (t_facts @ f_facts)
      | Cfg.Goto _ | Cfg.Ret _ -> ())
    body.Cfg.blocks;
  let top = !universe in
  let spec =
    {
      D.init_entry = SSet.empty;
      init_other = top;
      join = SSet.inter;
      equal = SSet.equal;
      transfer_instr =
        (fun ins fact ->
          match ins.Instr.i with
          | Instr.Putfield (_, fr, _, Instr.Src_null) | Instr.Putstatic (fr, _, Instr.Src_null)
            ->
              SSet.remove (field_key fr) fact
          | Instr.Putfield _ | Instr.Putstatic _ | Instr.Move _ | Instr.Const _ | Instr.New _
          | Instr.Getfield _ | Instr.Getstatic _ | Instr.Call _ | Instr.Intrinsic _
          | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ -> (
              match gen_put ins with Some key -> SSet.add key fact | None -> fact))
      (* note: the Src_null branches above intentionally override gen *);
      transfer_edge =
        (fun blk edge fact ->
          if not edge_facts then fact
          else
            match (blk.Cfg.b_term, edge) with
            | Cfg.If { t_facts; _ }, D.Edge_true ->
                List.fold_left
                  (fun f -> function
                    | Cfg.Nn_field fr -> SSet.add (field_key fr) f
                    | Cfg.Nn_var _ -> f)
                  fact t_facts
            | Cfg.If { f_facts; _ }, D.Edge_false ->
                List.fold_left
                  (fun f -> function
                    | Cfg.Nn_field fr -> SSet.add (field_key fr) f
                    | Cfg.Nn_var _ -> f)
                  fact f_facts
            | (Cfg.If _ | Cfg.Goto _ | Cfg.Ret _), (D.Edge_goto | D.Edge_true | D.Edge_false)
              ->
                fact);
    }
  in
  let res = D.run body spec in
  let table = Hashtbl.create 64 in
  D.iter_facts res (fun ins fact -> Hashtbl.replace table ins.Instr.id fact);
  table

let analyze (body : Cfg.body) : t =
  let fresh = fresh_vars body in
  let fresh_or_getter = fresh_vars ~getters_count:true body in
  let gen_alloc table (ins : Instr.t) =
    match ins.Instr.i with
    | Instr.Putfield (_, fr, s, Instr.Src_var) | Instr.Putstatic (fr, s, Instr.Src_var) ->
        if Hashtbl.mem table s.Instr.v_id then Some (field_key fr) else None
    | Instr.Putfield (_, _, _, Instr.Src_null) | Instr.Putstatic (_, _, Instr.Src_null)
    | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Getstatic _
    | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
    | Instr.Monitor_exit _ ->
        None
  in
  (* non-null: any non-null store counts, plus branch facts *)
  let gen_nonnull (ins : Instr.t) =
    match ins.Instr.i with
    | Instr.Putfield (_, fr, _, Instr.Src_var) | Instr.Putstatic (fr, _, Instr.Src_var) ->
        (* storing an arbitrary var is not a must-non-null guarantee unless
           it is a fresh allocation *)
        gen_alloc fresh ins |> Option.map (fun _ -> field_key fr)
    | Instr.Putfield (_, _, _, Instr.Src_null) | Instr.Putstatic (_, _, Instr.Src_null)
    | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Getstatic _
    | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
    | Instr.Monitor_exit _ ->
        None
  in
  let nonnull_before = must_fields body ~gen_put:gen_nonnull ~edge_facts:true in
  let alloc_before = must_fields body ~gen_put:(gen_alloc fresh) ~edge_facts:false in
  let maybe_alloc_before =
    must_fields body ~gen_put:(gen_alloc fresh_or_getter) ~edge_facts:false
  in
  (* vars null-checked anywhere in the body, closed backwards through
     moves: checking a copy of a loaded value guards the load too *)
  let checked_vars = Hashtbl.create 16 in
  Array.iter
    (fun blk ->
      match blk.Cfg.b_term with
      | Cfg.If { t_facts; f_facts; _ } ->
          List.iter
            (function
              | Cfg.Nn_var v -> Hashtbl.replace checked_vars v.Instr.v_id ()
              | Cfg.Nn_field _ -> ())
            (t_facts @ f_facts)
      | Cfg.Goto _ | Cfg.Ret _ -> ())
    body.Cfg.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    Cfg.iter_instrs
      (fun ins ->
        match ins.Instr.i with
        | Instr.Move (d, s)
          when Hashtbl.mem checked_vars d.Instr.v_id
               && not (Hashtbl.mem checked_vars s.Instr.v_id) ->
            Hashtbl.replace checked_vars s.Instr.v_id ();
            changed := true
        | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Putfield _
        | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Call _ | Instr.Intrinsic _
        | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
            ())
      body
  done;
  (* may-allocation: a fresh store to the field exists on some path *)
  let may_alloc = ref SSet.empty in
  Cfg.iter_instrs
    (fun ins ->
      match gen_alloc fresh ins with
      | Some key -> may_alloc := SSet.add key !may_alloc
      | None -> ())
    body;
  (* def-use for UR *)
  let uses_of = Hashtbl.create 64 in
  Cfg.iter_instrs
    (fun ins ->
      List.iter
        (fun v ->
          Hashtbl.replace uses_of v.Instr.v_id
            (ins :: Option.value ~default:[] (Hashtbl.find_opt uses_of v.Instr.v_id)))
        (Instr.uses ins))
    body;
  {
    body;
    nonnull_before;
    alloc_before;
    maybe_alloc_before;
    checked_vars;
    may_alloc = !may_alloc;
    uses_of;
  }

let lookup table id = Option.value ~default:SSet.empty (Hashtbl.find_opt table id)

(* IG: the use (a getfield) is protected by an if-guard: either the field
   is must-non-null here, or the loaded local is null-checked in this
   body. *)
let is_guarded_use t ~(instr : Instr.t) : bool =
  match instr.Instr.i with
  | Instr.Getfield (d, _, fr) | Instr.Getstatic (d, fr) ->
      SSet.mem (field_key fr) (lookup t.nonnull_before instr.Instr.id)
      || Hashtbl.mem t.checked_vars d.Instr.v_id
  | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Putfield _ | Instr.Putstatic _
  | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
  | Instr.Monitor_exit _ ->
      false

let is_must_alloc_use t ~(instr : Instr.t) : bool =
  match instr.Instr.i with
  | Instr.Getfield (_, _, fr) | Instr.Getstatic (_, fr) ->
      SSet.mem (field_key fr) (lookup t.alloc_before instr.Instr.id)
  | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Putfield _ | Instr.Putstatic _
  | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
  | Instr.Monitor_exit _ ->
      false

let is_maybe_alloc_use t ~(instr : Instr.t) : bool =
  match instr.Instr.i with
  | Instr.Getfield (_, _, fr) | Instr.Getstatic (_, fr) ->
      SSet.mem (field_key fr) (lookup t.maybe_alloc_before instr.Instr.id)
  | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Putfield _ | Instr.Putstatic _
  | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
  | Instr.Monitor_exit _ ->
      false

(* UR: every use of the loaded value is a return, a call argument (not the
   receiver), or a comparison. *)
let is_used_for_return t ~(instr : Instr.t) : bool =
  match instr.Instr.i with
  | Instr.Getfield (d, _, _) | Instr.Getstatic (d, _) ->
      let users = Option.value ~default:[] (Hashtbl.find_opt t.uses_of d.Instr.v_id) in
      let benign (u : Instr.t) =
        match u.Instr.i with
        | Instr.Call (_, recv, _, args) ->
            (not (Instr.var_equal recv d)) && List.exists (Instr.var_equal d) args
        | Instr.Binop (_, (Ast.Eq | Ast.Ne), _, _) -> true
        | Instr.Move _ -> false  (* conservatively: flowing elsewhere *)
        | Instr.Const _ | Instr.New _ | Instr.Getfield _ | Instr.Putfield _
        | Instr.Getstatic _ | Instr.Putstatic _ | Instr.Intrinsic _ | Instr.Unop _
        | Instr.Binop _ | Instr.Monitor_enter _ | Instr.Monitor_exit _ ->
            false
      in
      let returned =
        Array.exists
          (fun blk ->
            match blk.Cfg.b_term with
            | Cfg.Ret (Some v) -> Instr.var_equal v d
            | Cfg.Ret None | Cfg.Goto _ | Cfg.If _ -> false)
          t.body.Cfg.blocks
      in
      (match users with [] -> returned | _ :: _ -> List.for_all benign users)
      && (returned || users <> [])
  | Instr.Move _ | Instr.Const _ | Instr.New _ | Instr.Putfield _ | Instr.Putstatic _
  | Instr.Call _ | Instr.Intrinsic _ | Instr.Unop _ | Instr.Binop _ | Instr.Monitor_enter _
  | Instr.Monitor_exit _ ->
      false

(* RHB support: does this body allocate the field on some path? *)
let may_allocates t (fr : Instr.fref) : bool = SSet.mem (field_key fr) t.may_alloc
