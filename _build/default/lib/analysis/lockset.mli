(** Must-held lockset analysis.

    nAdroid ignores locks for race {e detection} (locks cannot prevent
    ordering violations, §5) but the If-Guard / Intra-Allocation filters
    need them: between true threads a guard only helps under a common
    lock (§6.1.2). A lock object enters the set only when the monitor
    variable's points-to set is a singleton (must-alias); entry locksets
    intersect over all ordinary call sites. *)

module IntSet = Pta.IntSet

type t

val run : Pta.t -> t

val locks_at : t -> inst:int -> instr_id:int -> IntSet.t
(** Locks definitely held just before an instruction. *)

val common_lock : t -> inst1:int -> instr1:int -> inst2:int -> instr2:int -> bool
(** Are two program points protected by a common lock object? *)
