(** The built-in Android framework surface, written in MiniAndroid
    itself and parsed once at start-up.

    Methods with empty bodies here are framework intrinsics whose real
    semantics live in {!Nadroid_android.Api} (statically) and in the
    simulator (dynamically); the few with real bodies ([Thread.init],
    [Message.init]) are analysed like user code. *)

val source : string
(** The MiniAndroid source of all framework classes. *)

val program : Ast.program Lazy.t

val is_builtin_class : string -> bool

val intrinsics : (string * (Ast.ty list * Ast.ty)) list
(** Unqualified intrinsic functions ([log], [sleep], [i2s]) with their
    signatures. *)

val intrinsic_sig : string -> (Ast.ty list * Ast.ty) option
