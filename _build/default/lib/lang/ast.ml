(* Abstract syntax of MiniAndroid.

   MiniAndroid is a small Java-like language with single inheritance,
   instance/static fields, methods, anonymous inner classes (used
   pervasively for Runnable / listener objects, as in real Android code)
   and a [synchronized] statement for lockset analysis.

   Anonymous classes are hoisted by the parser into fresh top-level
   classes named ["Outer$n"]; their capture of the enclosing instance is
   materialised by semantic analysis as an implicit [outer] field (see
   {!Sema}). *)

type ty =
  | Tint
  | Tbool
  | Tstring
  | Tvoid
  | Tclass of string

let rec ty_equal a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tstring, Tstring | Tvoid, Tvoid -> true
  | Tclass x, Tclass y -> String.equal x y
  | (Tint | Tbool | Tstring | Tvoid | Tclass _), _ -> ignore ty_equal; false

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "bool"
  | Tstring -> Fmt.string ppf "string"
  | Tvoid -> Fmt.string ppf "void"
  | Tclass c -> Fmt.string ppf c

type unop = Not | Neg

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

let pp_unop ppf = function Not -> Fmt.string ppf "!" | Neg -> Fmt.string ppf "-"

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%"
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | And -> "&&"
    | Or -> "||")

type expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | Null
  | This
  | IntLit of int
  | BoolLit of bool
  | StrLit of string
  | Name of string
      (** unresolved simple name: local variable, own field, or captured
          outer field — resolved by {!Sema} *)
  | FieldAcc of expr * string
  | Call of expr option * string * expr list
      (** [Call (None, m, args)] is an unqualified call [m(args)]
          resolved against [this] / outer instances; [Call (Some r, ...)]
          is [r.m(args)]. *)
  | New of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt = { s : stmt_kind; sloc : Loc.t }

and stmt_kind =
  | Decl of ty * string * expr option
  | AssignName of string * expr  (** [x = e] — local, own field or outer field *)
  | AssignField of expr * string * expr  (** [r.f = e] *)
  | Expr of expr
  | If of expr * block * block
  | While of expr * block
  | Return of expr option
  | Sync of expr * block
  | BlockStmt of block

and block = stmt list

type meth = {
  m_name : string;
  m_ret : ty;
  m_params : (ty * string) list;
  m_body : block;
  m_loc : Loc.t;
}

type field = { f_name : string; f_ty : ty; f_static : bool; f_loc : Loc.t }

type cls = {
  c_name : string;
  c_super : string option;
  c_fields : field list;
  c_methods : meth list;
  c_anon : bool;  (** hoisted anonymous inner class *)
  c_outer : string option;  (** enclosing class, for anonymous classes *)
  c_loc : Loc.t;
}

type program = { p_classes : cls list }

(* Helpers used throughout the frontend. *)

let expr ?(loc = Loc.dummy) e = { e; eloc = loc }
let stmt ?(loc = Loc.dummy) s = { s; sloc = loc }

let find_class prog name = List.find_opt (fun c -> String.equal c.c_name name) prog.p_classes

let find_method cls name = List.find_opt (fun m -> String.equal m.m_name name) cls.c_methods

let find_field cls name = List.find_opt (fun f -> String.equal f.f_name name) cls.c_fields

(* Structural size of an expression / statement, used by tests and by the
   corpus generator to keep generated methods within realistic bounds. *)
let rec expr_size e =
  match e.e with
  | Null | This | IntLit _ | BoolLit _ | StrLit _ | Name _ -> 1
  | FieldAcc (r, _) -> 1 + expr_size r
  | Call (r, _, args) ->
      1
      + (match r with Some r -> expr_size r | None -> 0)
      + List.fold_left (fun acc a -> acc + expr_size a) 0 args
  | New (_, args) -> 1 + List.fold_left (fun acc a -> acc + expr_size a) 0 args
  | Unop (_, a) -> 1 + expr_size a
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b

let rec stmt_size st =
  match st.s with
  | Decl (_, _, None) -> 1
  | Decl (_, _, Some e) | AssignName (_, e) | Expr e | Return (Some e) -> 1 + expr_size e
  | AssignField (r, _, e) -> 1 + expr_size r + expr_size e
  | Return None -> 1
  | If (c, a, b) -> (1 + expr_size c + block_size a) + block_size b
  | While (c, b) -> 1 + expr_size c + block_size b
  | Sync (l, b) -> 1 + expr_size l + block_size b
  | BlockStmt b -> block_size b

and block_size b = List.fold_left (fun acc st -> acc + stmt_size st) 0 b
