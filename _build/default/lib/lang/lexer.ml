(* Hand-written lexer for MiniAndroid.

   The lexer works on a whole in-memory string (corpus apps are embedded
   sources), tracks line/column positions for diagnostics, and skips both
   [//] line comments and non-nesting [/* */] block comments. *)

type t = {
  src : string;
  file : string;
  mutable pos : int;  (* byte offset into [src] *)
  mutable line : int;
  mutable col : int;
}

let create ~file src = { src; file; pos = 0; line = 1; col = 1 }

let loc lx = Loc.make ~file:lx.file ~line:lx.line ~col:lx.col

let at_end lx = lx.pos >= String.length lx.src

let peek lx = if at_end lx then None else Some lx.src.[lx.pos]

let peek2 lx = if lx.pos + 1 >= String.length lx.src then None else Some lx.src.[lx.pos + 1]

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_alpha c || is_digit c

let rec skip_trivia lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_trivia lx
  | Some '/' -> (
      match peek2 lx with
      | Some '/' ->
          while (not (at_end lx)) && peek lx <> Some '\n' do
            advance lx
          done;
          skip_trivia lx
      | Some '*' ->
          let start = loc lx in
          advance lx;
          advance lx;
          skip_block_comment lx start;
          skip_trivia lx
      | Some _ | None -> ())
  | Some _ | None -> ()

and skip_block_comment lx start =
  match (peek lx, peek2 lx) with
  | Some '*', Some '/' ->
      advance lx;
      advance lx
  | Some _, _ ->
      advance lx;
      skip_block_comment lx start
  | None, _ -> Diag.error ~loc:start "unterminated block comment"

let lex_ident lx =
  let start = lx.pos in
  while (match peek lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let lex_int lx l =
  let start = lx.pos in
  while (match peek lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match int_of_string_opt s with
  | Some n -> Token.INT n
  | None -> Diag.error ~loc:l "integer literal out of range: %s" s

let lex_string lx l =
  advance lx;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | None -> Diag.error ~loc:l "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' -> (
        advance lx;
        match peek lx with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance lx;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance lx;
            go ()
        | Some ('"' | '\\') ->
            Buffer.add_char buf lx.src.[lx.pos];
            advance lx;
            go ()
        | Some c -> Diag.error ~loc:(loc lx) "invalid escape sequence: \\%c" c
        | None -> Diag.error ~loc:l "unterminated string literal")
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

(* Returns the next token together with its start location. *)
let next lx : Token.t * Loc.t =
  skip_trivia lx;
  let l = loc lx in
  match peek lx with
  | None -> (Token.EOF, l)
  | Some c when is_digit c -> (lex_int lx l, l)
  | Some '"' -> (lex_string lx l, l)
  | Some c when is_alpha c ->
      let s = lex_ident lx in
      let tok =
        match Token.keyword_of_string s with
        | Some kw -> kw
        | None ->
            if s.[0] >= 'A' && s.[0] <= 'Z' then Token.UIDENT s else Token.IDENT s
      in
      (tok, l)
  | Some c ->
      let two t =
        advance lx;
        advance lx;
        (t, l)
      in
      let one t =
        advance lx;
        (t, l)
      in
      (match (c, peek2 lx) with
      | '=', Some '=' -> two Token.EQ
      | '=', _ -> one Token.ASSIGN
      | '!', Some '=' -> two Token.NE
      | '!', _ -> one Token.BANG
      | '<', Some '=' -> two Token.LE
      | '<', _ -> one Token.LT
      | '>', Some '=' -> two Token.GE
      | '>', _ -> one Token.GT
      | '&', Some '&' -> two Token.ANDAND
      | '|', Some '|' -> two Token.OROR
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | ';', _ -> one Token.SEMI
      | ',', _ -> one Token.COMMA
      | '.', _ -> one Token.DOT
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | ('&' | '|'), _ -> Diag.error ~loc:l "unexpected character %C (did you mean %c%c?)" c c c
      | _, _ -> Diag.error ~loc:l "unexpected character %C" c)

(* Tokenize a whole source string; used by tests and by the parser. *)
let tokenize ~file src =
  let lx = create ~file src in
  let rec go acc =
    let tok, l = next lx in
    match tok with Token.EOF -> List.rev ((tok, l) :: acc) | _ -> go ((tok, l) :: acc)
  in
  go []
