(** Semantic analysis for MiniAndroid.

    Takes a parsed {!Ast.program}, merges it with the framework builtins,
    and produces a {e resolved} program in which every simple name is
    resolved (local, own/inherited field, captured outer field desugared
    to explicit [outer]-chain reads, or static field), every call has an
    explicit receiver and a resolved signature, and locals are
    alpha-renamed to be unique per method. All well-formedness and typing
    failures raise {!Diag.Error}. *)

(** {1 Resolved representation} *)

type field_ref = {
  fr_class : string;  (** declaring class *)
  fr_name : string;
  fr_ty : Ast.ty;
  fr_static : bool;
}

type method_sig = {
  ms_class : string;  (** declaring class of the statically resolved target *)
  ms_name : string;
  ms_ret : Ast.ty;
  ms_params : (Ast.ty * string) list;
}

type rexpr = { re : rexpr_kind; rty : Ast.ty; rloc : Loc.t }

and rexpr_kind =
  | Rnull
  | Rthis
  | Rint of int
  | Rbool of bool
  | Rstr of string
  | Rlocal of string  (** unique local name *)
  | Rget of rexpr * field_ref
  | Rget_static of field_ref
  | Rcall of rexpr * method_sig * rexpr list
  | Rintrinsic of string * rexpr list
  | Rnew of string * method_sig option * rexpr list
      (** class, optional [init] constructor, arguments *)
  | Runop of Ast.unop * rexpr
  | Rbinop of Ast.binop * rexpr * rexpr

type rstmt = { rs : rstmt_kind; rsloc : Loc.t }

and rstmt_kind =
  | Rdecl of Ast.ty * string * rexpr option
  | Rset_local of string * rexpr
  | Rset_field of rexpr * field_ref * rexpr
  | Rset_static of field_ref * rexpr
  | Rexpr of rexpr
  | Rif of rexpr * rblock * rblock
  | Rwhile of rexpr * rblock
  | Rreturn of rexpr option
  | Rsync of rexpr * rblock
  | Rblock of rblock

and rblock = rstmt list

type rmeth = {
  rm_class : string;
  rm_name : string;
  rm_ret : Ast.ty;
  rm_params : (Ast.ty * string) list;
  rm_body : rblock;
  rm_loc : Loc.t;
}

type rcls = {
  rc_name : string;
  rc_super : string option;
  rc_fields : field_ref list;  (** own fields only, incl. the implicit [outer] *)
  rc_methods : rmeth list;  (** own methods only *)
  rc_anon : bool;
  rc_outer : string option;
  rc_builtin : bool;
  rc_loc : Loc.t;
}

type t = {
  classes : rcls Map.Make(String).t;
  order : string list;  (** declaration order: builtins first, then user classes *)
}

(** {1 Hierarchy queries} *)

val get_class : t -> string -> rcls
(** @raise Diag.Error on unknown classes. *)

val ancestors : t -> string -> string list
(** Proper ancestors, closest first. *)

val is_subclass : t -> string -> string -> bool
(** [is_subclass p a b] holds when [a] = [b] or [a] inherits from [b]. *)

val is_assignable : t -> src:Ast.ty -> dst:Ast.ty -> bool

val lookup_field : t -> string -> string -> field_ref option
(** Search a field by name in a class or its ancestors. *)

val lookup_method : t -> string -> string -> method_sig option
(** Static resolution of a method by name in a class or its ancestors. *)

val dispatch : t -> string -> string -> rmeth option
(** The most-derived implementation reached when the dynamic receiver
    class is the first argument — used by the call graph and the
    interpreter. *)

val all_fields : t -> string -> field_ref list
(** Own and inherited fields. *)

val user_classes : t -> rcls list
(** Non-builtin classes, in declaration order. *)

val all_classes : t -> rcls list

val fold_methods : t -> ('a -> rcls -> rmeth -> 'a) -> 'a -> 'a

(** {1 Entry points} *)

val analyze : Ast.program -> t
(** Analyse a parsed user program together with the framework builtins. *)

val of_source : file:string -> string -> t
(** Parse and analyse in one go. *)
