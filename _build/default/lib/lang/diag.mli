(** Structured diagnostics for the MiniAndroid frontend.

    The frontend never exits the process: user-facing failures raise
    {!Error} with a structured diagnostic so library clients (tests,
    corpus generator, CLI) can catch and render them uniformly. *)

type severity = Err | Warn

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc fmt ...] raises {!Error} with the formatted message. *)

val warning : ?loc:Loc.t -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [warning ~loc fmt ...] builds (but does not raise) a warning. *)

val pp : t Fmt.t

val to_string : t -> string

val protect : (unit -> 'a) -> ('a, t) result
(** Run a frontend computation, turning {!Error} into [Result.Error]. *)
