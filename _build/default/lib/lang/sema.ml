(* Semantic analysis for MiniAndroid.

   Sema takes a parsed {!Ast.program}, merges it with the framework
   builtins, and produces a *resolved* program in which:
   - every simple name is resolved to a local, an own/inherited field, a
     captured outer field (desugared to an explicit chain of [outer]
     field reads), or a static field;
   - every call has an explicit receiver and a resolved method signature
     (or is an intrinsic);
   - locals are alpha-renamed so names are unique within a method;
   - anonymous classes carry an implicit [outer] field, initialised at
     allocation by the IR lowering.

   All checks (class hierarchy well-formedness, typing, override
   compatibility) raise {!Diag.Error} on failure. *)

module SMap = Map.Make (String)

(* -- resolved representation ------------------------------------------ *)

type field_ref = {
  fr_class : string;  (** declaring class *)
  fr_name : string;
  fr_ty : Ast.ty;
  fr_static : bool;
}

type method_sig = {
  ms_class : string;  (** declaring class of the resolved target *)
  ms_name : string;
  ms_ret : Ast.ty;
  ms_params : (Ast.ty * string) list;
}

type rexpr = { re : rexpr_kind; rty : Ast.ty; rloc : Loc.t }

and rexpr_kind =
  | Rnull
  | Rthis
  | Rint of int
  | Rbool of bool
  | Rstr of string
  | Rlocal of string  (** unique local name *)
  | Rget of rexpr * field_ref
  | Rget_static of field_ref
  | Rcall of rexpr * method_sig * rexpr list
  | Rintrinsic of string * rexpr list
  | Rnew of string * method_sig option * rexpr list  (** class, init method, args *)
  | Runop of Ast.unop * rexpr
  | Rbinop of Ast.binop * rexpr * rexpr

type rstmt = { rs : rstmt_kind; rsloc : Loc.t }

and rstmt_kind =
  | Rdecl of Ast.ty * string * rexpr option
  | Rset_local of string * rexpr
  | Rset_field of rexpr * field_ref * rexpr
  | Rset_static of field_ref * rexpr
  | Rexpr of rexpr
  | Rif of rexpr * rblock * rblock
  | Rwhile of rexpr * rblock
  | Rreturn of rexpr option
  | Rsync of rexpr * rblock
  | Rblock of rblock

and rblock = rstmt list

type rmeth = {
  rm_class : string;
  rm_name : string;
  rm_ret : Ast.ty;
  rm_params : (Ast.ty * string) list;
  rm_body : rblock;
  rm_loc : Loc.t;
}

type rcls = {
  rc_name : string;
  rc_super : string option;
  rc_fields : field_ref list;  (** own fields only (incl. implicit [outer]) *)
  rc_methods : rmeth list;  (** own methods only *)
  rc_anon : bool;
  rc_outer : string option;
  rc_builtin : bool;
  rc_loc : Loc.t;
}

type t = {
  classes : rcls SMap.t;
  order : string list;  (** declaration order: builtins first, then user classes *)
}

(* -- hierarchy queries -------------------------------------------------- *)

let get_class prog name =
  match SMap.find_opt name prog.classes with
  | Some c -> c
  | None -> Diag.error "unknown class %s" name

let rec ancestors prog name =
  match (get_class prog name).rc_super with
  | None -> []
  | Some s -> s :: ancestors prog s

(* [is_subclass prog a b] holds when [a] = [b] or [a] inherits from [b]. *)
let is_subclass prog a b = String.equal a b || List.exists (String.equal b) (ancestors prog a)

let is_assignable prog ~(src : Ast.ty) ~(dst : Ast.ty) =
  match (src, dst) with
  | Ast.Tint, Ast.Tint | Ast.Tbool, Ast.Tbool | Ast.Tstring, Ast.Tstring -> true
  | Ast.Tclass "<null>", Ast.Tclass _ -> true
  | Ast.Tclass a, Ast.Tclass b -> is_subclass prog a b
  | Ast.Tvoid, Ast.Tvoid -> true
  | (Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid | Ast.Tclass _), _ -> false

(* Find a field by name in [cls] or its ancestors. *)
let rec lookup_field prog cls name : field_ref option =
  let c = get_class prog cls in
  match List.find_opt (fun f -> String.equal f.fr_name name) c.rc_fields with
  | Some f -> Some f
  | None -> ( match c.rc_super with None -> None | Some s -> lookup_field prog s name)

(* Find the signature of a method by name in [cls] or its ancestors
   (static resolution; dynamic dispatch is the analyses' concern). *)
let rec lookup_method prog cls name : method_sig option =
  let c = get_class prog cls in
  match List.find_opt (fun m -> String.equal m.rm_name name) c.rc_methods with
  | Some m ->
      Some { ms_class = c.rc_name; ms_name = m.rm_name; ms_ret = m.rm_ret; ms_params = m.rm_params }
  | None -> ( match c.rc_super with None -> None | Some s -> lookup_method prog s name)

(* The most-derived implementation of [name] when the dynamic type is
   [cls]: used by the call-graph and the interpreter. *)
let rec dispatch prog cls name : rmeth option =
  let c = get_class prog cls in
  match List.find_opt (fun m -> String.equal m.rm_name name) c.rc_methods with
  | Some m -> Some m
  | None -> ( match c.rc_super with None -> None | Some s -> dispatch prog s name)

let all_fields prog cls : field_ref list =
  let rec go name acc =
    let c = get_class prog name in
    let acc = c.rc_fields @ acc in
    match c.rc_super with None -> acc | Some s -> go s acc
  in
  go cls []

let user_classes prog =
  List.filter_map
    (fun n ->
      let c = get_class prog n in
      if c.rc_builtin then None else Some c)
    prog.order

let all_classes prog = List.map (get_class prog) prog.order

let fold_methods prog f acc =
  List.fold_left
    (fun acc cname ->
      let c = get_class prog cname in
      List.fold_left (fun acc m -> f acc c m) acc c.rc_methods)
    acc prog.order

(* -- resolution environment -------------------------------------------- *)

type env = {
  prog_sketch : rcls SMap.t;  (* classes with fields/sigs but unresolved bodies *)
  order_sketch : string list;
  cls : string;  (* current class *)
  mutable scopes : (string * (Ast.ty * string)) list list;
      (* source name -> (type, unique name); innermost scope first *)
  mutable fresh : int;
  ret : Ast.ty;
}

let sketch_prog env : t = { classes = env.prog_sketch; order = env.order_sketch }

let push_scope env = env.scopes <- [] :: env.scopes

let pop_scope env =
  match env.scopes with
  | [] -> invalid_arg "pop_scope: empty scope stack"
  | _ :: rest -> env.scopes <- rest

let declare_local env ~loc src_name ty =
  (match env.scopes with
  | scope :: _ when List.mem_assoc src_name scope ->
      Diag.error ~loc "duplicate local variable %s" src_name
  | [] | _ :: _ -> ());
  env.fresh <- env.fresh + 1;
  (* Keep the first occurrence readable; shadowing declarations in outer
     scopes get a numeric suffix so unique names stay unique. *)
  let unique =
    if List.exists (fun sc -> List.mem_assoc src_name sc) env.scopes then
      Printf.sprintf "%s#%d" src_name env.fresh
    else src_name
  in
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((src_name, (ty, unique)) :: scope) :: rest
  | [] -> invalid_arg "declare_local: no scope");
  unique

let find_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match List.assoc_opt name scope with Some v -> Some v | None -> go rest)
  in
  go env.scopes

(* The chain of enclosing classes for capture resolution: the current
   class first, then its outers. Each hop corresponds to one implicit
   [outer] field read. *)
let outer_chain env : string list =
  let prog = sketch_prog env in
  let rec go name acc =
    let c = get_class prog name in
    match c.rc_outer with None -> List.rev (name :: acc) | Some o -> go o (name :: acc)
  in
  go env.cls []

(* Build [this.outer.outer...] with [hops] outer reads. *)
let outer_access env ~loc hops =
  let prog = sketch_prog env in
  let rec go expr cls hops =
    if hops = 0 then expr
    else
      match lookup_field prog cls "outer" with
      | Some fr ->
          let outer_cls =
            match fr.fr_ty with
            | Ast.Tclass c -> c
            | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid ->
                Diag.error ~loc "internal: outer field of %s is not a class type" cls
          in
          go { re = Rget (expr, fr); rty = fr.fr_ty; rloc = loc } outer_cls (hops - 1)
      | None -> Diag.error ~loc "internal: missing outer field on %s" cls
  in
  go { re = Rthis; rty = Ast.Tclass env.cls; rloc = loc } env.cls hops

(* -- expression resolution --------------------------------------------- *)

let class_of_ty ~loc ty =
  match ty with
  | Ast.Tclass c -> c
  | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid ->
      Diag.error ~loc "expected an object but found a value of type %a" Ast.pp_ty ty

let rec resolve_expr env (e : Ast.expr) : rexpr =
  let loc = e.Ast.eloc in
  let prog = sketch_prog env in
  match e.Ast.e with
  | Ast.Null -> { re = Rnull; rty = Ast.Tclass "<null>"; rloc = loc }
  | Ast.This -> { re = Rthis; rty = Ast.Tclass env.cls; rloc = loc }
  | Ast.IntLit n -> { re = Rint n; rty = Ast.Tint; rloc = loc }
  | Ast.BoolLit b -> { re = Rbool b; rty = Ast.Tbool; rloc = loc }
  | Ast.StrLit s -> { re = Rstr s; rty = Ast.Tstring; rloc = loc }
  | Ast.Name x -> (
      match find_local env x with
      | Some (ty, unique) -> { re = Rlocal unique; rty = ty; rloc = loc }
      | None -> (
          match resolve_name_as_field env ~loc x with
          | Some re -> re
          | None -> Diag.error ~loc "unknown name %s" x))
  | Ast.FieldAcc (r, fname) -> (
      let r = resolve_expr env r in
      let rcls = class_of_ty ~loc:r.rloc r.rty in
      match lookup_field prog rcls fname with
      | Some fr when not fr.fr_static -> { re = Rget (r, fr); rty = fr.fr_ty; rloc = loc }
      | Some _ -> Diag.error ~loc "field %s.%s is static; access it via its class" rcls fname
      | None -> Diag.error ~loc "class %s has no field %s" rcls fname)
  | Ast.Call (None, m, args) -> resolve_unqualified_call env ~loc m args
  | Ast.Call (Some r, m, args) ->
      let r = resolve_expr env r in
      let rcls = class_of_ty ~loc:r.rloc r.rty in
      resolve_call env ~loc r rcls m args
  | Ast.New (cname, args) -> (
      match SMap.find_opt cname prog.classes with
      | None -> Diag.error ~loc "unknown class %s" cname
      | Some c ->
          let init = lookup_method prog cname "init" in
          let args = List.map (resolve_expr env) args in
          (match (init, args) with
          | None, [] -> ()
          | None, _ :: _ -> Diag.error ~loc "class %s has no init method but got arguments" cname
          | Some ms, args -> check_args env ~loc ~what:(cname ^ ".init") ms args);
          ignore c;
          { re = Rnew (cname, init, args); rty = Ast.Tclass cname; rloc = loc })
  | Ast.Unop (op, a) -> (
      let a = resolve_expr env a in
      match (op, a.rty) with
      | Ast.Not, Ast.Tbool -> { re = Runop (op, a); rty = Ast.Tbool; rloc = loc }
      | Ast.Neg, Ast.Tint -> { re = Runop (op, a); rty = Ast.Tint; rloc = loc }
      | (Ast.Not | Ast.Neg), ty ->
          Diag.error ~loc "operator %a cannot be applied to %a" Ast.pp_unop op Ast.pp_ty ty)
  | Ast.Binop (op, a, b) -> resolve_binop env ~loc op a b

and resolve_binop env ~loc op a b =
  let prog = sketch_prog env in
  let a = resolve_expr env a in
  let b = resolve_expr env b in
  let ok rty = { re = Rbinop (op, a, b); rty; rloc = loc } in
  let fail () =
    Diag.error ~loc "operator %a cannot be applied to %a and %a" Ast.pp_binop op Ast.pp_ty a.rty
      Ast.pp_ty b.rty
  in
  match op with
  | Ast.Add -> (
      match (a.rty, b.rty) with
      | Ast.Tint, Ast.Tint -> ok Ast.Tint
      | Ast.Tstring, Ast.Tstring -> ok Ast.Tstring
      | _, _ -> fail ())
  | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod -> (
      match (a.rty, b.rty) with Ast.Tint, Ast.Tint -> ok Ast.Tint | _, _ -> fail ())
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      match (a.rty, b.rty) with Ast.Tint, Ast.Tint -> ok Ast.Tbool | _, _ -> fail ())
  | Ast.And | Ast.Or -> (
      match (a.rty, b.rty) with Ast.Tbool, Ast.Tbool -> ok Ast.Tbool | _, _ -> fail ())
  | Ast.Eq | Ast.Ne -> (
      match (a.rty, b.rty) with
      | Ast.Tint, Ast.Tint | Ast.Tbool, Ast.Tbool | Ast.Tstring, Ast.Tstring -> ok Ast.Tbool
      | Ast.Tclass "<null>", Ast.Tclass _ | Ast.Tclass _, Ast.Tclass "<null>" -> ok Ast.Tbool
      | Ast.Tclass x, Ast.Tclass y
        when is_subclass prog x y || is_subclass prog y x
             || String.equal x "Object" || String.equal y "Object" ->
          ok Ast.Tbool
      | _, _ -> fail ())

(* Resolve a bare name as an own field, a captured outer field, or a
   static field of any enclosing class. *)
and resolve_name_as_field env ~loc x : rexpr option =
  let prog = sketch_prog env in
  let rec try_chain hops = function
    | [] -> None
    | cls :: rest -> (
        match lookup_field prog cls x with
        | Some fr when fr.fr_static -> Some { re = Rget_static fr; rty = fr.fr_ty; rloc = loc }
        | Some fr ->
            let recv = outer_access env ~loc hops in
            Some { re = Rget (recv, fr); rty = fr.fr_ty; rloc = loc }
        | None -> try_chain (hops + 1) rest)
  in
  try_chain 0 (outer_chain env)

and resolve_unqualified_call env ~loc m args : rexpr =
  let prog = sketch_prog env in
  let rec try_chain hops = function
    | [] -> (
        match Builtins.intrinsic_sig m with
        | Some (ptys, ret) ->
            let args = List.map (resolve_expr env) args in
            if List.length args <> List.length ptys then
              Diag.error ~loc "intrinsic %s expects %d argument(s), got %d" m (List.length ptys)
                (List.length args);
            List.iter2
              (fun a pty ->
                if not (is_assignable prog ~src:a.rty ~dst:pty) then
                  Diag.error ~loc:a.rloc "argument of %s has type %a but %a was expected" m
                    Ast.pp_ty a.rty Ast.pp_ty pty)
              args ptys;
            { re = Rintrinsic (m, args); rty = ret; rloc = loc }
        | None -> Diag.error ~loc "unknown method or intrinsic %s" m)
    | cls :: rest -> (
        match lookup_method prog cls m with
        | Some _ ->
            let recv = outer_access env ~loc hops in
            resolve_call env ~loc recv cls m args
        | None -> try_chain (hops + 1) rest)
  in
  try_chain 0 (outer_chain env)

and resolve_call env ~loc recv rcls m args : rexpr =
  let prog = sketch_prog env in
  match lookup_method prog rcls m with
  | None -> Diag.error ~loc "class %s has no method %s" rcls m
  | Some ms ->
      let args = List.map (resolve_expr env) args in
      check_args env ~loc ~what:(rcls ^ "." ^ m) ms args;
      { re = Rcall (recv, ms, args); rty = ms.ms_ret; rloc = loc }

and check_args env ~loc ~what ms args =
  let prog = sketch_prog env in
  if List.length args <> List.length ms.ms_params then
    Diag.error ~loc "%s expects %d argument(s), got %d" what (List.length ms.ms_params)
      (List.length args);
  List.iter2
    (fun a (pty, pname) ->
      if not (is_assignable prog ~src:a.rty ~dst:pty) then
        Diag.error ~loc:a.rloc "argument %s of %s has type %a but %a was expected" pname what
          Ast.pp_ty a.rty Ast.pp_ty pty)
    args ms.ms_params

(* -- statement resolution ----------------------------------------------- *)

let rec resolve_stmt env (st : Ast.stmt) : rstmt =
  let loc = st.Ast.sloc in
  let prog = sketch_prog env in
  match st.Ast.s with
  | Ast.Decl (ty, x, init) ->
      (match ty with
      | Ast.Tvoid -> Diag.error ~loc "variable %s cannot have type void" x
      | Ast.Tclass c when not (SMap.mem c prog.classes) -> Diag.error ~loc "unknown class %s" c
      | Ast.Tclass _ | Ast.Tint | Ast.Tbool | Ast.Tstring -> ());
      let init =
        Option.map
          (fun e ->
            let r = resolve_expr env e in
            if not (is_assignable prog ~src:r.rty ~dst:ty) then
              Diag.error ~loc:r.rloc "cannot initialise %s : %a with a value of type %a" x
                Ast.pp_ty ty Ast.pp_ty r.rty;
            r)
          init
      in
      let unique = declare_local env ~loc x ty in
      { rs = Rdecl (ty, unique, init); rsloc = loc }
  | Ast.AssignName (x, e) -> (
      let rhs = resolve_expr env e in
      match find_local env x with
      | Some (ty, unique) ->
          if not (is_assignable prog ~src:rhs.rty ~dst:ty) then
            Diag.error ~loc "cannot assign a value of type %a to %s : %a" Ast.pp_ty rhs.rty x
              Ast.pp_ty ty;
          { rs = Rset_local (unique, rhs); rsloc = loc }
      | None -> (
          match resolve_name_as_field env ~loc x with
          | Some { re = Rget (recv, fr); _ } ->
              if not (is_assignable prog ~src:rhs.rty ~dst:fr.fr_ty) then
                Diag.error ~loc "cannot assign a value of type %a to field %s : %a" Ast.pp_ty
                  rhs.rty x Ast.pp_ty fr.fr_ty;
              { rs = Rset_field (recv, fr, rhs); rsloc = loc }
          | Some { re = Rget_static fr; _ } ->
              if not (is_assignable prog ~src:rhs.rty ~dst:fr.fr_ty) then
                Diag.error ~loc "cannot assign a value of type %a to static field %s : %a"
                  Ast.pp_ty rhs.rty x Ast.pp_ty fr.fr_ty;
              { rs = Rset_static (fr, rhs); rsloc = loc }
          | Some _ | None -> Diag.error ~loc "unknown variable or field %s" x))
  | Ast.AssignField (r, fname, e) -> (
      let r = resolve_expr env r in
      let rhs = resolve_expr env e in
      let rcls = class_of_ty ~loc:r.rloc r.rty in
      match lookup_field prog rcls fname with
      | Some fr when not fr.fr_static ->
          if not (is_assignable prog ~src:rhs.rty ~dst:fr.fr_ty) then
            Diag.error ~loc "cannot assign a value of type %a to field %s.%s : %a" Ast.pp_ty
              rhs.rty rcls fname Ast.pp_ty fr.fr_ty;
          { rs = Rset_field (r, fr, rhs); rsloc = loc }
      | Some _ -> Diag.error ~loc "field %s.%s is static" rcls fname
      | None -> Diag.error ~loc "class %s has no field %s" rcls fname)
  | Ast.Expr e -> { rs = Rexpr (resolve_expr env e); rsloc = loc }
  | Ast.If (c, a, b) ->
      let c = resolve_expr env c in
      if not (Ast.ty_equal c.rty Ast.Tbool) then
        Diag.error ~loc:c.rloc "if condition must be bool, found %a" Ast.pp_ty c.rty;
      { rs = Rif (c, resolve_block env a, resolve_block env b); rsloc = loc }
  | Ast.While (c, b) ->
      let c = resolve_expr env c in
      if not (Ast.ty_equal c.rty Ast.Tbool) then
        Diag.error ~loc:c.rloc "while condition must be bool, found %a" Ast.pp_ty c.rty;
      { rs = Rwhile (c, resolve_block env b); rsloc = loc }
  | Ast.Return e ->
      let e = Option.map (resolve_expr env) e in
      (match (e, env.ret) with
      | None, Ast.Tvoid -> ()
      | None, ty -> Diag.error ~loc "method must return a value of type %a" Ast.pp_ty ty
      | Some r, ty ->
          if not (is_assignable prog ~src:r.rty ~dst:ty) then
            Diag.error ~loc:r.rloc "cannot return a value of type %a from a method returning %a"
              Ast.pp_ty r.rty Ast.pp_ty ty);
      { rs = Rreturn e; rsloc = loc }
  | Ast.Sync (l, b) ->
      let l = resolve_expr env l in
      let _ = class_of_ty ~loc:l.rloc l.rty in
      { rs = Rsync (l, resolve_block env b); rsloc = loc }
  | Ast.BlockStmt b -> { rs = Rblock (resolve_block env b); rsloc = loc }

and resolve_block env (b : Ast.block) : rblock =
  push_scope env;
  let r = List.map (resolve_stmt env) b in
  pop_scope env;
  r

(* -- class table construction ------------------------------------------- *)

let field_ref_of_ast cls (f : Ast.field) =
  { fr_class = cls; fr_name = f.Ast.f_name; fr_ty = f.Ast.f_ty; fr_static = f.Ast.f_static }

(* First pass: build class skeletons (fields + method signatures, bodies
   left empty) so that resolution can consult the full hierarchy. *)
let build_sketch (classes : (Ast.cls * bool) list) : rcls SMap.t * string list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (c, _) ->
      if Hashtbl.mem tbl c.Ast.c_name then
        Diag.error ~loc:c.Ast.c_loc "duplicate class %s" c.Ast.c_name;
      Hashtbl.add tbl c.Ast.c_name c)
    classes;
  let order = List.map (fun (c, _) -> c.Ast.c_name) classes in
  (* check supers exist and the hierarchy is acyclic *)
  List.iter
    (fun (c, _) ->
      match c.Ast.c_super with
      | None -> ()
      | Some s ->
          if not (Hashtbl.mem tbl s) then
            Diag.error ~loc:c.Ast.c_loc "class %s extends unknown class %s" c.Ast.c_name s)
    classes;
  let rec check_cycle seen name =
    if List.exists (String.equal name) seen then
      Diag.error "inheritance cycle involving class %s" name;
    match (Hashtbl.find tbl name).Ast.c_super with
    | None -> ()
    | Some s -> check_cycle (name :: seen) s
  in
  List.iter (fun (c, _) -> check_cycle [] c.Ast.c_name) classes;
  let sketch =
    List.fold_left
      (fun acc (c, builtin) ->
        let name = c.Ast.c_name in
        (* duplicate member checks *)
        let seen_f = Hashtbl.create 8 and seen_m = Hashtbl.create 8 in
        List.iter
          (fun (f : Ast.field) ->
            if Hashtbl.mem seen_f f.Ast.f_name then
              Diag.error ~loc:f.Ast.f_loc "duplicate field %s in class %s" f.Ast.f_name name;
            Hashtbl.add seen_f f.Ast.f_name ())
          c.Ast.c_fields;
        List.iter
          (fun (m : Ast.meth) ->
            if Hashtbl.mem seen_m m.Ast.m_name then
              Diag.error ~loc:m.Ast.m_loc "duplicate method %s in class %s" m.Ast.m_name name;
            Hashtbl.add seen_m m.Ast.m_name ())
          c.Ast.c_methods;
        let own_fields = List.map (field_ref_of_ast name) c.Ast.c_fields in
        let own_fields =
          if c.Ast.c_anon then
            let outer =
              match c.Ast.c_outer with
              | Some o -> o
              | None -> Diag.error ~loc:c.Ast.c_loc "internal: anonymous class without outer"
            in
            { fr_class = name; fr_name = "outer"; fr_ty = Ast.Tclass outer; fr_static = false }
            :: own_fields
          else own_fields
        in
        let methods =
          List.map
            (fun (m : Ast.meth) ->
              {
                rm_class = name;
                rm_name = m.Ast.m_name;
                rm_ret = m.Ast.m_ret;
                rm_params = m.Ast.m_params;
                rm_body = [];
                rm_loc = m.Ast.m_loc;
              })
            c.Ast.c_methods
        in
        SMap.add name
          {
            rc_name = name;
            rc_super = c.Ast.c_super;
            rc_fields = own_fields;
            rc_methods = methods;
            rc_anon = c.Ast.c_anon;
            rc_outer = c.Ast.c_outer;
            rc_builtin = builtin;
            rc_loc = c.Ast.c_loc;
          }
          acc)
      SMap.empty classes
  in
  (sketch, order)

(* Hierarchy-level checks that need the full sketch: no field hiding, and
   override compatibility. *)
let check_hierarchy (sketch : rcls SMap.t) (order : string list) =
  let prog = { classes = sketch; order } in
  List.iter
    (fun name ->
      let c = get_class prog name in
      (match c.rc_super with
      | None -> ()
      | Some super ->
          List.iter
            (fun f ->
              if not (String.equal f.fr_name "outer") then
                match lookup_field prog super f.fr_name with
                | Some inherited ->
                    Diag.error ~loc:c.rc_loc "field %s in class %s hides %s.%s" f.fr_name name
                      inherited.fr_class f.fr_name
                | None -> ())
            c.rc_fields;
          List.iter
            (fun m ->
              match lookup_method prog super m.rm_name with
              | Some inherited ->
                  let params_ok =
                    List.length inherited.ms_params = List.length m.rm_params
                    && List.for_all2
                         (fun (a, _) (b, _) -> Ast.ty_equal a b)
                         inherited.ms_params m.rm_params
                  in
                  if not (params_ok && Ast.ty_equal inherited.ms_ret m.rm_ret) then
                    Diag.error ~loc:m.rm_loc
                      "method %s.%s overrides %s.%s with an incompatible signature" name
                      m.rm_name inherited.ms_class m.rm_name
              | None -> ())
            c.rc_methods);
      (* check field/param types mention known classes *)
      let check_ty loc = function
        | Ast.Tclass cn when not (SMap.mem cn sketch) ->
            Diag.error ~loc "unknown class %s" cn
        | Ast.Tclass _ | Ast.Tint | Ast.Tbool | Ast.Tstring | Ast.Tvoid -> ()
      in
      List.iter (fun f -> check_ty c.rc_loc f.fr_ty) c.rc_fields;
      List.iter
        (fun m ->
          check_ty m.rm_loc m.rm_ret;
          List.iter (fun (t, _) -> check_ty m.rm_loc t) m.rm_params)
        c.rc_methods)
    order

(* -- entry point --------------------------------------------------------- *)

(* Analyse a parsed user program together with the framework builtins. *)
let analyze (user : Ast.program) : t =
  let builtins = Lazy.force Builtins.program in
  let tagged =
    List.map (fun c -> (c, true)) builtins.Ast.p_classes
    @ List.map (fun c -> (c, false)) user.Ast.p_classes
  in
  let sketch, order = build_sketch tagged in
  check_hierarchy sketch order;
  (* second pass: resolve method bodies *)
  let ast_by_name = Hashtbl.create 64 in
  List.iter (fun (c, _) -> Hashtbl.add ast_by_name c.Ast.c_name c) tagged;
  let classes =
    SMap.mapi
      (fun name (rc : rcls) ->
        let ast_cls = Hashtbl.find ast_by_name name in
        let methods =
          List.map
            (fun (rm : rmeth) ->
              let ast_m =
                match Ast.find_method ast_cls rm.rm_name with
                | Some m -> m
                | None -> Diag.error "internal: lost method %s.%s" name rm.rm_name
              in
              let env =
                {
                  prog_sketch = sketch;
                  order_sketch = order;
                  cls = name;
                  scopes = [];
                  fresh = 0;
                  ret = rm.rm_ret;
                }
              in
              push_scope env;
              (* parameters are the outermost scope *)
              List.iter
                (fun (ty, pname) ->
                  let u = declare_local env ~loc:rm.rm_loc pname ty in
                  if not (String.equal u pname) then
                    Diag.error ~loc:rm.rm_loc "duplicate parameter %s in %s.%s" pname name
                      rm.rm_name)
                rm.rm_params;
              let body = resolve_block env ast_m.Ast.m_body in
              pop_scope env;
              { rm with rm_body = body })
            rc.rc_methods
        in
        { rc with rc_methods = methods })
      sketch
  in
  { classes; order }

(* Convenience: parse + analyse in one go. *)
let of_source ~file src = analyze (Parser.parse_program ~file src)
