(* Source locations for MiniAndroid programs.

   Every AST node carries a [Loc.t] so that diagnostics, race reports and
   the dynamic validator can point back at concrete source lines. *)

type t = {
  file : string;  (** source file name (or a synthetic name for corpus apps) *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let is_dummy l = l.line = 0

let pp ppf l =
  if is_dummy l then Fmt.string ppf "<no-loc>"
  else Fmt.pf ppf "%s:%d:%d" l.file l.line l.col

let to_string l = Fmt.str "%a" pp l

let compare (a : t) (b : t) =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0
