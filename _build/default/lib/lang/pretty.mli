(** Pretty-printer for MiniAndroid ASTs.

    Printing followed by re-parsing is a fixpoint: parenthesisation
    mirrors the parser's associativity exactly (arithmetic left, [&&] /
    [||] right, comparisons non-associative) — a property checked by the
    qcheck round-trip tests. *)

val pp_ty : Ast.ty Fmt.t

val pp_expr : Ast.expr Fmt.t

val pp_stmt : int -> Ast.stmt Fmt.t
(** [pp_stmt indent] prints one statement at the given indentation
    depth (two spaces per level). *)

val pp_block : int -> Ast.block Fmt.t

val pp_cls : Ast.cls Fmt.t

val pp_program : Ast.program Fmt.t

val program_to_string : Ast.program -> string
