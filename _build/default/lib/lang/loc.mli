(** Source locations.

    Every AST node, IR instruction and diagnostic carries a location so
    that race reports and simulator crashes can point back at concrete
    source lines. *)

type t = {
  file : string;  (** source file name (or a synthetic corpus name) *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

val dummy : t
(** A location for synthesized nodes; prints as ["<no-loc>"]. *)

val make : file:string -> line:int -> col:int -> t

val is_dummy : t -> bool

val pp : t Fmt.t

val to_string : t -> string

val compare : t -> t -> int

val equal : t -> t -> bool
