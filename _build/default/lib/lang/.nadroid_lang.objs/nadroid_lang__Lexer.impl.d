lib/lang/lexer.ml: Buffer Diag List Loc String Token
