lib/lang/builtins.mli: Ast Lazy
