lib/lang/sema.ml: Ast Builtins Diag Hashtbl Lazy List Loc Map Option Parser Printf String
