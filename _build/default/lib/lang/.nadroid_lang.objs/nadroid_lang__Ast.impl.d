lib/lang/ast.ml: Fmt List Loc String
