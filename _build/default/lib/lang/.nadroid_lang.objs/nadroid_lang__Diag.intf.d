lib/lang/diag.mli: Fmt Format Loc
