lib/lang/loc.ml: Fmt Int String
