lib/lang/diag.ml: Fmt Format Loc Result
