lib/lang/sema.mli: Ast Loc Map String
