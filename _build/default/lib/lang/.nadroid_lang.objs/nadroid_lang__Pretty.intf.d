lib/lang/pretty.mli: Ast Fmt
