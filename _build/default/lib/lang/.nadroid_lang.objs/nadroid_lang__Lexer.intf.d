lib/lang/lexer.mli: Loc Token
