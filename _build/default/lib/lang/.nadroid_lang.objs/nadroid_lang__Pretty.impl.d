lib/lang/pretty.ml: Ast Fmt List String
