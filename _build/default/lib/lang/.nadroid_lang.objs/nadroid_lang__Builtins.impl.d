lib/lang/builtins.ml: Ast Lazy List Parser String
