lib/lang/token.ml: List Printf
