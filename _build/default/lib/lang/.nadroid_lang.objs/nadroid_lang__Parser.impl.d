lib/lang/parser.ml: Ast Diag Lexer List Loc Printf Token
