lib/lang/loc.mli: Fmt
