(* Pretty-printer for MiniAndroid ASTs.

   Printing followed by re-parsing must yield a structurally equal AST
   (modulo locations and anonymous-class hoisting, which the parser has
   already performed by the time we print) — a property the test suite
   checks with qcheck round-trip tests. *)

open Ast

let pp_ty = Ast.pp_ty

(* Precedence levels, higher binds tighter. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div | Mod -> 6

let rec pp_expr_prec prec ppf (e : expr) =
  match e.e with
  | Null -> Fmt.string ppf "null"
  | This -> Fmt.string ppf "this"
  | IntLit n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | BoolLit b -> Fmt.bool ppf b
  | StrLit s -> Fmt.pf ppf "%S" s
  | Name x -> Fmt.string ppf x
  | FieldAcc (r, f) -> Fmt.pf ppf "%a.%s" (pp_expr_prec 10) r f
  | Call (None, m, args) -> Fmt.pf ppf "%s(%a)" m pp_args args
  | Call (Some r, m, args) -> Fmt.pf ppf "%a.%s(%a)" (pp_expr_prec 10) r m pp_args args
  | New (c, args) -> Fmt.pf ppf "new %s(%a)" c pp_args args
  | Unop (op, a) -> Fmt.pf ppf "%a%a" pp_unop op (pp_expr_prec 9) a
  | Binop (op, a, b) ->
      let p = binop_prec op in
      (* parenthesisation must mirror the parser's associativity:
         arithmetic is left-associative, && / || are right-associative,
         and comparisons are non-associative (parens on both sides) *)
      let lp, rp =
        match op with
        | Eq | Ne | Lt | Le | Gt | Ge -> (p + 1, p + 1)
        | And | Or -> (p + 1, p)
        | Add | Sub | Mul | Div | Mod -> (p, p + 1)
      in
      let body ppf () =
        Fmt.pf ppf "%a %a %a" (pp_expr_prec lp) a pp_binop op (pp_expr_prec rp) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()

and pp_args ppf args = Fmt.(list ~sep:(any ", ") (pp_expr_prec 0)) ppf args

let pp_expr = pp_expr_prec 0

let rec pp_stmt ind ppf (st : stmt) =
  let pad = String.make (2 * ind) ' ' in
  match st.s with
  | Decl (ty, x, None) -> Fmt.pf ppf "%svar %a %s;" pad pp_ty ty x
  | Decl (ty, x, Some e) -> Fmt.pf ppf "%svar %a %s = %a;" pad pp_ty ty x pp_expr e
  | AssignName (x, e) -> Fmt.pf ppf "%s%s = %a;" pad x pp_expr e
  | AssignField (r, f, e) -> Fmt.pf ppf "%s%a.%s = %a;" pad (pp_expr_prec 10) r f pp_expr e
  | Expr e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | If (c, a, []) -> Fmt.pf ppf "%sif (%a) {@\n%a%s}" pad pp_expr c (pp_block (ind + 1)) a pad
  | If (c, a, b) ->
      Fmt.pf ppf "%sif (%a) {@\n%a%s} else {@\n%a%s}" pad pp_expr c (pp_block (ind + 1)) a pad
        (pp_block (ind + 1)) b pad
  | While (c, b) -> Fmt.pf ppf "%swhile (%a) {@\n%a%s}" pad pp_expr c (pp_block (ind + 1)) b pad
  | Return None -> Fmt.pf ppf "%sreturn;" pad
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Sync (l, b) ->
      Fmt.pf ppf "%ssynchronized (%a) {@\n%a%s}" pad pp_expr l (pp_block (ind + 1)) b pad
  | BlockStmt b -> Fmt.pf ppf "%s{@\n%a%s}" pad (pp_block (ind + 1)) b pad

and pp_block ind ppf (b : block) =
  List.iter (fun st -> Fmt.pf ppf "%a@\n" (pp_stmt ind) st) b

let pp_field ppf (f : field) =
  if f.f_static then Fmt.pf ppf "  static field %a %s;" pp_ty f.f_ty f.f_name
  else Fmt.pf ppf "  field %a %s;" pp_ty f.f_ty f.f_name

let pp_meth ppf (m : meth) =
  let pp_param ppf (ty, name) = Fmt.pf ppf "%a %s" pp_ty ty name in
  Fmt.pf ppf "  method %a %s(%a) {@\n%a  }" pp_ty m.m_ret m.m_name
    Fmt.(list ~sep:(any ", ") pp_param)
    m.m_params (pp_block 2) m.m_body

let pp_cls ppf (c : cls) =
  (match c.c_super with
  | None -> Fmt.pf ppf "class %s {@\n" c.c_name
  | Some s -> Fmt.pf ppf "class %s extends %s {@\n" c.c_name s);
  List.iter (fun f -> Fmt.pf ppf "%a@\n" pp_field f) c.c_fields;
  List.iter (fun m -> Fmt.pf ppf "%a@\n" pp_meth m) c.c_methods;
  Fmt.pf ppf "}"

let pp_program ppf (p : program) =
  List.iter (fun c -> Fmt.pf ppf "%a@\n@\n" pp_cls c) p.p_classes

let program_to_string p = Fmt.str "%a" pp_program p
