(* Built-in Android framework surface, written in MiniAndroid itself.

   These class declarations give the frontend signatures to typecheck
   against. Methods whose body is empty here are *framework intrinsics*:
   their real semantics live in the analysis ({!Nadroid_android.Api}) and
   in the dynamic simulator. Plain helper methods (e.g. [Thread.init])
   have ordinary bodies and are analysed/interpreted as user code.

   The set of classes mirrors the callbacks and registration APIs the
   paper enumerates in §4: Activity lifecycle + UI callbacks, Service /
   BroadcastReceiver, Handler (post / sendMessage), AsyncTask, native
   threads, and the cancellation APIs used by the CHB filter (§6.2.1). *)

let source =
  {|
// ---- root ----------------------------------------------------------
class Object { }

class Binder { }

class Message {
  field int what;
  method void init(int w) { this.what = w; }
}

class Intent { }

class Location { }

class View {
  method void setOnClickListener(OnClickListener l) { }
  method void setOnLongClickListener(OnLongClickListener l) { }
  method void post(Runnable r) { }
  method void setEnabled(bool b) { }
}

class Button extends View { }

class OnClickListener {
  method void onClick(View v) { }
}

class OnLongClickListener {
  method void onLongClick(View v) { }
}

class Runnable {
  method void run() { }
}

class Thread {
  field Runnable target;
  method void init(Runnable r) { this.target = r; }
  method void start() { }
  method void join() { }
}

class Executor {
  method void execute(Runnable r) { }
}

class Looper { }

class Handler {
  method void post(Runnable r) { }
  method void postDelayed(Runnable r, int delayMs) { }
  method void sendMessage(Message m) { }
  method void sendEmptyMessage(int what) { }
  method void removeCallbacksAndMessages() { }
  method void handleMessage(Message m) { }
}

class AsyncTask {
  method void execute() { }
  method void cancel(bool mayInterrupt) { }
  method void publishProgress(int progress) { }
  method void onPreExecute() { }
  method void doInBackground() { }
  method void onProgressUpdate(int progress) { }
  method void onPostExecute() { }
}

class ServiceConnection {
  method void onServiceConnected(Binder service) { }
  method void onServiceDisconnected() { }
}

class LocationManager {
  method void requestLocationUpdates(LocationListener l) { }
  method void removeUpdates(LocationListener l) { }
}

class LocationListener {
  method void onLocationChanged(Location loc) { }
}

class SensorManager {
  method void registerListener(SensorListener l) { }
  method void unregisterListener(SensorListener l) { }
}

class PowerManager {
  method WakeLock newWakeLock(string tag) { return null; }
}

class WakeLock {
  method void acquire() { }
  method void release() { }
}

class SensorListener {
  method void onSensorChanged(int value) { }
}

// ---- components -----------------------------------------------------
class Context {
  method void bindService(ServiceConnection conn) { }
  method void unbindService(ServiceConnection conn) { }
  method void registerReceiver(BroadcastReceiver r) { }
  method void unregisterReceiver(BroadcastReceiver r) { }
  method void startService(Intent i) { }
  method LocationManager getLocationManager() { return null; }
  method SensorManager getSensorManager() { return null; }
  method PowerManager getPowerManager() { return null; }
}

class Activity extends Context {
  // lifecycle callbacks (entry callbacks, §4.1)
  method void onCreate() { }
  method void onStart() { }
  method void onResume() { }
  method void onPause() { }
  method void onStop() { }
  method void onRestart() { }
  method void onDestroy() { }
  // other framework-invoked entry callbacks
  method void onActivityResult(int code) { }
  method void onCreateContextMenu() { }
  method void onCreateOptionsMenu() { }
  method void onRetainNonConfigurationInstance() { }
  method void onBackPressed() { }
  method void onConfigurationChanged() { }
  method void onSaveInstanceState() { }
  method void onNewIntent(Intent i) { }
  // UI-thread utilities
  method void runOnUiThread(Runnable r) { }
  method View findViewById(int id) { return null; }
  method void finish() { }
}

class Service extends Context {
  method void onCreate() { }
  method void onStartCommand(Intent i) { }
  method Binder onBind(Intent i) { return null; }
  method void onUnbind(Intent i) { }
  method void onDestroy() { }
  method void stopSelf() { }
}

class BroadcastReceiver {
  method void onReceive(Intent i) { }
}
|}

(* Parsed once; immutable afterwards. *)
let program : Ast.program Lazy.t = lazy (Parser.parse_program ~file:"<builtins>" source)

let class_names : string list Lazy.t =
  lazy (List.map (fun c -> c.Ast.c_name) (Lazy.force program).Ast.p_classes)

let is_builtin_class name = List.exists (String.equal name) (Lazy.force class_names)

(* Intrinsic, unqualified functions available in any method body. *)
let intrinsics : (string * (Ast.ty list * Ast.ty)) list =
  [
    ("log", ([ Ast.Tstring ], Ast.Tvoid));
    ("sleep", ([ Ast.Tint ], Ast.Tvoid));
    ("i2s", ([ Ast.Tint ], Ast.Tstring));
  ]

let intrinsic_sig name = List.assoc_opt name intrinsics
