(** Recursive-descent parser for MiniAndroid.

    Anonymous inner classes — [new Runnable() { ... }] — are hoisted
    into fresh top-level classes named ["Outer$n"] with
    {!Ast.cls.c_anon} set and {!Ast.cls.c_outer} recording the enclosing
    class; the allocation site becomes a plain [New] of the hoisted
    class. Syntax errors raise {!Diag.Error}. *)

val parse_program : file:string -> string -> Ast.program
