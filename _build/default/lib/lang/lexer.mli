(** Hand-written lexer for MiniAndroid.

    Operates on whole in-memory strings (corpus apps are embedded
    sources), tracks line/column positions, and skips [//] line comments
    and non-nesting [/* */] block comments. Lexical errors raise
    {!Diag.Error}. *)

type t

val create : file:string -> string -> t

val next : t -> Token.t * Loc.t
(** The next token and its start location; returns {!Token.EOF} at the
    end of input and keeps returning it afterwards. *)

val tokenize : file:string -> string -> (Token.t * Loc.t) list
(** The whole token stream, ending with a single {!Token.EOF}. *)
