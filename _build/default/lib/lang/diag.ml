(* Diagnostics for the MiniAndroid frontend.

   The frontend never exits the process: all user-facing failures are
   reported through the [Error] exception carrying a structured
   diagnostic, so that library clients (tests, corpus generator, CLI) can
   catch and render them uniformly. *)

type severity = Err | Warn

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

let error ?(loc = Loc.dummy) fmt =
  Format.kasprintf (fun message -> raise (Error { severity = Err; loc; message })) fmt

let warning ?(loc = Loc.dummy) fmt =
  Format.kasprintf (fun message -> { severity = Warn; loc; message }) fmt

let pp_severity ppf = function
  | Err -> Fmt.string ppf "error"
  | Warn -> Fmt.string ppf "warning"

let pp ppf d =
  if Loc.is_dummy d.loc then Fmt.pf ppf "%a: %s" pp_severity d.severity d.message
  else Fmt.pf ppf "%a: %a: %s" Loc.pp d.loc pp_severity d.severity d.message

let to_string d = Fmt.str "%a" pp d

(* Convenience for clients that prefer results over exceptions. *)
let protect f = try Ok (f ()) with Error d -> Result.Error d
