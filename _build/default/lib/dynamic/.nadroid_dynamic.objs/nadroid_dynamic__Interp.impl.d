lib/dynamic/interp.ml: Api Array Ast Cfg Heap Instr List Loc Nadroid_android Nadroid_ir Nadroid_lang Prog Sema Value
