lib/dynamic/interp.mli: Cfg Heap Instr Loc Nadroid_android Nadroid_ir Nadroid_lang Prog Sema Value
