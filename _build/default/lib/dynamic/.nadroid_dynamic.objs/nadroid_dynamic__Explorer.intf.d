lib/dynamic/explorer.mli: Detect Interp Nadroid_core Nadroid_ir Prog World
