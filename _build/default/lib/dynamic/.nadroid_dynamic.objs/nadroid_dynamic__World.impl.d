lib/dynamic/world.ml: Api Ast Callback Component Effect Fmt Hashtbl Heap Interp Lifecycle List Nadroid_android Nadroid_ir Nadroid_lang Option Prog Sema String Value
