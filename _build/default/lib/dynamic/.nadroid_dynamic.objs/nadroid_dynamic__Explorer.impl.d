lib/dynamic/explorer.ml: Cfg Detect Hashtbl Instr Interp List Nadroid_core Nadroid_ir Nadroid_lang Prog Random Sema String World
