lib/dynamic/heap.mli: Value
