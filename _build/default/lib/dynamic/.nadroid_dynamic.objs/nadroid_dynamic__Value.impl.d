lib/dynamic/value.ml: Fmt String
