lib/dynamic/value.mli: Fmt
