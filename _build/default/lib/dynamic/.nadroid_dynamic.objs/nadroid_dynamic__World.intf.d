lib/dynamic/world.mli: Effect Fmt Hashtbl Heap Interp Lifecycle Nadroid_android Nadroid_ir Prog Value
