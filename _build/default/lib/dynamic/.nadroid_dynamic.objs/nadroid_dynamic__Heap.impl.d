lib/dynamic/heap.ml: Array Hashtbl Option Printf Value
