(* A growable heap of objects. Fields are stored under their qualified
   key (declaring class + name), matching the IR's field references, and
   read as [Vnull] until first written — Java default semantics. *)

type entry = { e_class : string; e_fields : (string, Value.t) Hashtbl.t }

type t = { mutable arr : entry array; mutable n : int; statics : (string, Value.t) Hashtbl.t }

let create () =
  { arr = Array.make 64 { e_class = ""; e_fields = Hashtbl.create 0 }; n = 0; statics = Hashtbl.create 16 }

let alloc t ~cls =
  let id = t.n in
  t.n <- id + 1;
  if id >= Array.length t.arr then begin
    let bigger = Array.make (2 * Array.length t.arr) t.arr.(0) in
    Array.blit t.arr 0 bigger 0 (Array.length t.arr);
    t.arr <- bigger
  end;
  t.arr.(id) <- { e_class = cls; e_fields = Hashtbl.create 8 };
  id

let entry t id =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Heap.entry: bad object id %d" id);
  t.arr.(id)

let class_of t id = (entry t id).e_class

let get_field_opt t id ~key = Hashtbl.find_opt (entry t id).e_fields key

let get_field t id ~key = Option.value ~default:Value.Vnull (get_field_opt t id ~key)

let set_field t id ~key v = Hashtbl.replace (entry t id).e_fields key v

let get_static_opt t ~key = Hashtbl.find_opt t.statics key

let get_static t ~key = Option.value ~default:Value.Vnull (get_static_opt t ~key)

let set_static t ~key v = Hashtbl.replace t.statics key v

let size t = t.n
