(** Runtime values of the MiniAndroid simulator. *)

type t = Vnull | Vint of int | Vbool of bool | Vstr of string | Vobj of int

val pp : t Fmt.t

val equal : t -> t -> bool

val truthy : t -> bool
(** @raise Invalid_argument on non-boolean values. *)
