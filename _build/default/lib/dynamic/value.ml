(* Runtime values of the MiniAndroid simulator. *)

type t = Vnull | Vint of int | Vbool of bool | Vstr of string | Vobj of int

let pp ppf = function
  | Vnull -> Fmt.string ppf "null"
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vstr s -> Fmt.pf ppf "%S" s
  | Vobj i -> Fmt.pf ppf "obj#%d" i

let equal a b =
  match (a, b) with
  | Vnull, Vnull -> true
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vstr x, Vstr y -> String.equal x y
  | Vobj x, Vobj y -> x = y
  | (Vnull | Vint _ | Vbool _ | Vstr _ | Vobj _), _ -> false

let truthy = function
  | Vbool b -> b
  | Vnull | Vint _ | Vstr _ | Vobj _ -> invalid_arg "Value.truthy: not a boolean"
