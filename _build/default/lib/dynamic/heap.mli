(** A growable heap of objects. Fields are stored under their qualified
    key (declaring class + name), matching the IR's field references. *)

type t

val create : unit -> t

val alloc : t -> cls:string -> int

val class_of : t -> int -> string

val get_field_opt : t -> int -> key:string -> Value.t option

val get_field : t -> int -> key:string -> Value.t
(** [Vnull] when unset; the interpreter applies per-type Java defaults
    via {!get_field_opt}. *)

val set_field : t -> int -> key:string -> Value.t -> unit

val get_static_opt : t -> key:string -> Value.t option

val get_static : t -> key:string -> Value.t

val set_static : t -> key:string -> Value.t -> unit

val size : t -> int
