bench/main.mli:
