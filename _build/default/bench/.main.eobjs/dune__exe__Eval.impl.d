bench/eval.ml: Corpus List Nadroid_core Nadroid_corpus Nadroid_dynamic Nadroid_lang Printf Spec String
