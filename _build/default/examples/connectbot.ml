(* The ConnectBot case study (Fig 1(a) and Fig 1(b)).

     dune exec examples/connectbot.exe

   Uses the corpus' hand-written ConnectBot app: a single-looper UAF
   between service-connection callbacks and a UI callback (a), and a
   posted Runnable that outlives its null-check (b). We show how nAdroid
   classifies the two bugs, why the if-guard in (b) does not help, and
   how the CAFA-style dynamic approach (one random execution) easily
   misses both. *)

module Pipeline = Nadroid_core.Pipeline
module Explorer = Nadroid_dynamic.Explorer

let () =
  let app = Option.get (Nadroid_corpus.Corpus.find "ConnectBot") in
  let t = Pipeline.analyze ~file:"connectbot.mand" app.Nadroid_corpus.Corpus.source in
  Fmt.pr "ConnectBot: %d potential, %d after sound, %d after unsound@.@."
    (List.length t.Pipeline.potential)
    (List.length t.Pipeline.after_sound)
    (List.length t.Pipeline.after_unsound);
  (* the two hand-written Fig 1 bugs *)
  let named =
    List.filter
      (fun (w : Nadroid_core.Detect.warning) ->
        let f = w.Nadroid_core.Detect.w_field.Nadroid_lang.Sema.fr_name in
        String.equal f "bound" || String.equal f "hostBridge")
      t.Pipeline.after_unsound
  in
  print_string (Nadroid_core.Report.to_string t.Pipeline.threads named);
  Fmt.pr "--- validation of the Fig 1 bugs ---@.";
  List.iter
    (fun w ->
      let v = Explorer.validate t.Pipeline.prog w () in
      Fmt.pr "%s: %s (found after %d runs)@."
        (Nadroid_core.Report.field_name w.Nadroid_core.Detect.w_field)
        (if v.Explorer.v_harmful then "HARMFUL" else "no witness")
        v.Explorer.v_runs)
    named;
  (* contrast with single-trace dynamic testing (the coverage problem,
     §2.3): one fixed run usually sees no crash at all *)
  let o = Explorer.random_run t.Pipeline.prog ~seed:42 ~max_steps:40 in
  Fmt.pr "@.single dynamic trace (seed 42): %d NPEs observed — the CAFA coverage problem@."
    (List.length o.Explorer.o_npes)
