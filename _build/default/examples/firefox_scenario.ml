(* The FireFox case study (Fig 1(c)): a looper-vs-thread UAF that an
   if-guard cannot fix.

     dune exec examples/firefox_scenario.exe

   onResume submits a Runnable to a pool thread that nulls [jClient];
   onPause checks [jClient != null] before using it — but check and use
   are not atomic with respect to the pool thread, so the guard is
   unsound (§6.1.2). We show that:
   - nAdroid keeps the warning (IG requires a common lock across threads);
   - adding a shared lock makes IG prune it;
   - a DEvA-style unconditional IG wrongly prunes the buggy version. *)

module Pipeline = Nadroid_core.Pipeline
module Filters = Nadroid_core.Filters

let buggy =
  {|
class JavaClient {
  field int refs;
  method void abort() { refs = 0; }
}
class GeckoApp extends Activity {
  field JavaClient jClient;
  field Executor threadPool;
  method void onCreate() { threadPool = new Executor(); jClient = new JavaClient(); }
  method void onResume() {
    threadPool.execute(new Runnable() {
      method void run() { jClient = null; }
    });
  }
  method void onPause() {
    if (jClient != null) {
      jClient.abort();
    }
  }
}
|}

(* Same program with both sides protected by one lock: now the guard is
   safe and the IG filter prunes the warning. *)
let locked =
  {|
class JavaClient {
  field int refs;
  method void abort() { refs = 0; }
}
class GeckoApp extends Activity {
  field JavaClient jClient;
  field Executor threadPool;
  field JavaClient lock;
  method void onCreate() {
    threadPool = new Executor();
    jClient = new JavaClient();
    lock = new JavaClient();
  }
  method void onResume() {
    threadPool.execute(new Runnable() {
      method void run() {
        synchronized (lock) { jClient = null; }
      }
    });
  }
  method void onPause() {
    synchronized (lock) {
      if (jClient != null) {
        jClient.abort();
      }
    }
  }
}
|}

let analyse name src config =
  let t = Pipeline.analyze ~config ~file:(name ^ ".mand") src in
  Fmt.pr "%-28s potential=%d remaining=%d@." name
    (List.length t.Pipeline.potential)
    (List.length t.Pipeline.after_unsound);
  t

let () =
  Fmt.pr "--- Fig 1(c): guard without atomicity ---@.";
  let t = analyse "firefox (buggy)" buggy Pipeline.default_config in
  print_string (Nadroid_core.Report.to_string t.Pipeline.threads t.Pipeline.after_unsound);
  List.iter
    (fun w ->
      let v = Nadroid_dynamic.Explorer.validate t.Pipeline.prog w () in
      Fmt.pr "validation: %s@."
        (if v.Nadroid_dynamic.Explorer.v_harmful then
           "HARMFUL — the pool thread interleaves between check and use"
         else "no witness"))
    t.Pipeline.after_unsound;
  Fmt.pr "@.--- same code under a common lock ---@.";
  ignore (analyse "firefox (locked)" locked Pipeline.default_config);
  Fmt.pr "@.--- DEvA-style unconditional if-guard (unsound, Section 2.3) ---@.";
  ignore
    (analyse "firefox (buggy, DEvA IG)" buggy
       { Pipeline.default_config with Pipeline.atomic_ig = false });
  Fmt.pr "(the unconditional filter prunes the real bug: a DEvA false negative)@."
