(* Quickstart: analyse a small MiniAndroid app end-to-end.

     dune exec examples/quickstart.exe

   The app binds to a service whose disconnect callback nulls a field
   that a context-menu callback dereferences — the paper's Fig 1(a)
   pattern. We run the full pipeline, print the threadification forest,
   the report, and a dynamically-found witness schedule. *)

module Pipeline = Nadroid_core.Pipeline

let source =
  {|
class Session {
  field int packets;
  method void send() { packets = packets + 1; }
}

class MainActivity extends Activity {
  field Session session;

  method void onCreate() {
    this.bindService(new ServiceConnection() {
      method void onServiceConnected(Binder b) { session = new Session(); }
      method void onServiceDisconnected() { session = null; }
    });
  }

  // BUG: nothing guarantees the service is still connected here.
  method void onCreateContextMenu() {
    session.send();
  }

  // SAFE: guarded, and callbacks on the same looper are atomic.
  method void onBackPressed() {
    if (session != null) {
      session.send();
    }
  }
}
|}

let () =
  let t = Pipeline.analyze ~file:"quickstart.mand" source in
  Fmt.pr "=== threadification (Section 4) ===@.%a@." Nadroid_core.Threadify.pp_forest
    t.Pipeline.threads;
  Fmt.pr "=== detection + filters (Sections 5-6) ===@.";
  Fmt.pr "potential: %d, after sound filters: %d, after unsound filters: %d@.@."
    (List.length t.Pipeline.potential)
    (List.length t.Pipeline.after_sound)
    (List.length t.Pipeline.after_unsound);
  print_string (Nadroid_core.Report.to_string t.Pipeline.threads t.Pipeline.after_unsound);
  Fmt.pr "=== dynamic validation (Section 7) ===@.";
  List.iter
    (fun w ->
      let v = Nadroid_dynamic.Explorer.validate t.Pipeline.prog w () in
      Fmt.pr "%s -> %s@."
        (Nadroid_core.Report.field_name w.Nadroid_core.Detect.w_field)
        (if v.Nadroid_dynamic.Explorer.v_harmful then "HARMFUL" else "no witness");
      Option.iter
        (fun trace ->
          Fmt.pr "  witness: %a@."
            Fmt.(list ~sep:(any " ; ") Nadroid_dynamic.World.pp_action)
            trace)
        v.Nadroid_dynamic.Explorer.v_witness)
    t.Pipeline.after_unsound
