(* Exploring the Android lifecycle and schedule space.

     dune exec examples/lifecycle_explorer.exe

   Demonstrates the dynamic substrate on its own: the lifecycle automaton
   (including the back edges that defeat naive happens-before reasoning,
   §6.1.1), bounded-exhaustive schedule exploration of a small app, and
   why the Resume-Happens-Before filter is *unsound* — the idiom it
   trusts is safe only if onResume really re-allocates. *)

module Explorer = Nadroid_dynamic.Explorer
module Lifecycle = Nadroid_android.Lifecycle

(* onPause frees, onResume restores, a click uses: the RHB idiom. *)
let rhb_app =
  {|
class Snapshot {
  field int age;
  method void refresh() { age = 0; }
}
class CameraActivity extends Activity {
  field Snapshot snap;
  method void onResume() { snap = new Snapshot(); }
  method void onPause() { snap = null; }
  method void onStart() {
    this.findViewById(7).setOnClickListener(new OnClickListener() {
      method void onClick(View v) { snap.refresh(); }
    });
  }
}
|}

(* The same app without the restoring allocation: the idiom broken. *)
let broken_app =
  {|
class Snapshot {
  field int age;
  method void refresh() { age = 0; }
}
class CameraActivity extends Activity {
  field Snapshot snap;
  method void onCreate() { snap = new Snapshot(); }
  method void onPause() { snap = null; }
  method void onStart() {
    this.findViewById(7).setOnClickListener(new OnClickListener() {
      method void onClick(View v) { snap.refresh(); }
    });
  }
}
|}

let () =
  Fmt.pr "--- lifecycle sequences of length <= 5 (note the pause/resume back edge) ---@.";
  let seqs = Lifecycle.sequences ~max_len:5 in
  Fmt.pr "%d distinct prefixes; e.g.:@." (List.length seqs);
  List.iteri
    (fun i seq ->
      if i < 6 then Fmt.pr "  %a@." Fmt.(list ~sep:(any " -> ") string) seq)
    (List.filter (fun s -> List.length s = 5) seqs);
  let explore name src =
    let prog = Nadroid_ir.Prog.of_source ~file:(name ^ ".mand") src in
    let npes = Explorer.exhaustive prog ~depth:6 in
    Fmt.pr "@.%s: bounded-exhaustive exploration (depth 6) finds %d distinct NPE site(s)@." name
      (List.length npes);
    List.iter
      (fun (npe : Nadroid_dynamic.Interp.npe) ->
        Fmt.pr "  NPE at %a@." Nadroid_ir.Instr.pp_mref npe.Nadroid_dynamic.Interp.npe_mref)
      npes;
    let t = Nadroid_core.Pipeline.analyze ~file:(name ^ ".mand") src in
    Fmt.pr "  nAdroid report after all filters: %d warning(s)@."
      (List.length t.Nadroid_core.Pipeline.after_unsound)
  in
  explore "rhb-idiom (onResume restores)" rhb_app;
  explore "broken-idiom (no restore)" broken_app;
  Fmt.pr
    "@.RHB prunes the first app (correctly: onResume always restores the field before UI \
     events) and the second app keeps its warning — the filter is unsound in general but \
     right on the trained idiom (Section 6.2.1).@."
