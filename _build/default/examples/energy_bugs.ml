(* No-sleep / energy bugs as ordering violations — the paper's §9
   extension in action.

     dune exec examples/energy_bugs.exe

   Three recorder-style apps:
   - one acquires a wake lock in onResume and releases it in onPause —
     the teardown release is lifecycle-ordered, so it is safe;
   - one releases only in a click handler — nothing orders that click
     after the acquire, so the device may never sleep;
   - one releases on the happy path only — an error branch leaks.

   The static verdicts are then cross-checked against the simulator's
   no-sleep oracle (wake lock still held once every activity is
   backgrounded). *)

module Pipeline = Nadroid_core.Pipeline
module Energy = Nadroid_core.Energy
module Explorer = Nadroid_dynamic.Explorer
module World = Nadroid_dynamic.World

let safe_app =
  {|
class RecorderActivity extends Activity {
  field WakeLock wl;
  method void onCreate() { wl = this.getPowerManager().newWakeLock("rec"); }
  method void onResume() { wl.acquire(); }
  method void onPause() { wl.release(); }
}
|}

let unordered_app =
  {|
class RecorderActivity extends Activity {
  field WakeLock wl;
  method void onCreate() {
    wl = this.getPowerManager().newWakeLock("rec");
    this.findViewById(1).setOnClickListener(new OnClickListener() {
      method void onClick(View v) { wl.release(); }
    });
  }
  method void onResume() { wl.acquire(); }
}
|}

let leaky_app =
  {|
class RecorderActivity extends Activity {
  field WakeLock wl;
  field int failures;
  method void onResume() {
    wl = this.getPowerManager().newWakeLock("rec");
    wl.acquire();
    failures = failures + 1;
    if (failures > 3) {
      log("giving up");
      // error path forgets the release
    } else {
      log("recording");
      wl.release();
    }
  }
}
|}

let simulate_no_sleep prog =
  (* random schedules; report whether any reaches a backgrounded app with
     a held wake lock *)
  let found = ref false in
  for seed = 0 to 120 do
    if not !found then begin
      let w = World.create prog in
      let rng = Random.State.make [| seed |] in
      let steps = ref 0 in
      while (not !found) && !steps < 40 && not w.World.crashed do
        (match World.enabled_actions w with
        | [] -> steps := 40
        | actions ->
            World.perform w (List.nth actions (Random.State.int rng (List.length actions))));
        incr steps;
        if World.no_sleep_state w then found := true
      done
    end
  done;
  !found

let () =
  List.iter
    (fun (name, src) ->
      let t = Pipeline.analyze ~file:(name ^ ".mand") src in
      let warnings = Energy.detect t.Pipeline.threads in
      Fmt.pr "%-22s static: %d no-sleep warning(s)%a@." name (List.length warnings)
        Fmt.(list ~sep:nop (any "@.  " ++ Energy.pp))
        warnings;
      Fmt.pr "%-22s dynamic oracle: %s@.@." ""
        (if simulate_no_sleep t.Pipeline.prog then "no-sleep state reachable"
         else "device always allowed to sleep"))
    [ ("safe (teardown)", safe_app); ("unordered release", unordered_app); ("leaky path", leaky_app) ]
