examples/lifecycle_explorer.mli:
