examples/quickstart.mli:
