examples/lifecycle_explorer.ml: Fmt List Nadroid_android Nadroid_core Nadroid_dynamic Nadroid_ir
