examples/energy_bugs.mli:
