examples/connectbot.ml: Fmt List Nadroid_core Nadroid_corpus Nadroid_dynamic Nadroid_lang Option String
