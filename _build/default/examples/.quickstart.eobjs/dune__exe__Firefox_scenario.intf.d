examples/firefox_scenario.mli:
