examples/quickstart.ml: Fmt List Nadroid_core Nadroid_dynamic Option
