examples/firefox_scenario.ml: Fmt List Nadroid_core Nadroid_dynamic
