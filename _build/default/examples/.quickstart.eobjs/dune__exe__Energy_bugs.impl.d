examples/energy_bugs.ml: Fmt List Nadroid_core Nadroid_dynamic Random
