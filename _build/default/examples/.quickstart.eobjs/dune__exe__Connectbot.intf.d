examples/connectbot.mli:
